//! The similarity engine: counting-based, dictionary-keyed computation of
//! the paper's profile-similarity score at population scale — with
//! incremental maintenance under profile dynamics and delta-varint
//! compressed storage.
//!
//! `Score_{u}(v) = |Profile(u) ∩ Profile(v)|` is evaluated everywhere in the
//! P3Q evaluation: once per candidate pair when building the ideal personal
//! networks (Section 3.2.1) and once per offer on every gossip exchange.
//! The naive route — a linear merge of the two sorted profiles per pair —
//! costs `O(|P_u| + |P_v|)` even when the intersection is empty, which is
//! what capped trace sizes before this module existed.
//!
//! [`ActionIndex`] inverts the dataset once: for every distinct tagging
//! action it stores the posting list of users whose profile contains it.
//! Scoring one user against *everyone* then becomes a counting sweep: walk
//! her actions, and for each action bump a dense per-user accumulator for
//! every other user on that posting list. The total work is proportional to
//! the number of *actually shared* actions — the intersection mass —
//! instead of the sum of profile lengths over all candidate pairs.
//!
//! ## Storage model: interned keys, compressed postings
//!
//! Since the columnar-storage refactor the index is keyed by the **interned
//! action dictionary** ([`p3q_trace::ActionDictionary`]): every distinct
//! `(item, tag)` action is a dense [`p3q_trace::ActionId`] (`u32`), assigned
//! in key order at build time, so
//!
//! * the key column is the dictionary itself — delta-varint compressed,
//!   ~2–3 bytes per key instead of the 8-byte packed `u64`s of the first
//!   index generation;
//! * posting lookup is *positional*: an action id maps straight to its slot
//!   in an id-range shard, no per-action key search;
//! * each posting list is stored as a **group-varint run** of ascending
//!   user ids (`[byte-length][first id: LEB128][deltas: group-varint]`,
//!   four deltas per control byte — see `p3q_trace::codec`), ~1–3 bytes
//!   per posting instead of 4, decoded four-at-a-time on the hot paths;
//! * random access goes through a two-level **group offset directory**:
//!   one absolute `u32` anchor every [`GROUPS_PER_ANCHOR`] groups (= 64
//!   posting slots) plus a `u16` anchor-relative delta per group —
//!   ~0.31 bytes per key against the 0.5 of the previous absolute-`u32`
//!   directory, with a per-shard wide fallback for blobs whose 64-slot
//!   windows outgrow `u16`.
//!
//! [`ActionIndex::memory`] reports the resident bytes of this layout next
//! to what the uncompressed CSR equivalent would take; the benchmark
//! harness (`bench_similarity`) tracks both.
//!
//! ## Sharding and the delta-apply cost model
//!
//! The id space is split into contiguous **shards** (about
//! [`TARGET_KEYS_PER_SHARD`] ids each). Profile dynamics (Section 3.4.1:
//! users keep tagging) no longer force a rebuild:
//!
//! * [`ActionIndex::apply_deltas`] interns any genuinely new actions into
//!   the dictionary tail, then decodes, patches and **recompresses only the
//!   shards containing the touched ids**. A batch of `D` new actions costs
//!   `O(D log D + Σ |touched shard|)` — untouched shards are never read.
//! * [`ActionIndex::remove_user`] handles churn (departures) the same way:
//!   only the shards holding the departed profile's ids are recompressed,
//!   and the **dirty set** (everyone who shared an action with the departed
//!   user) comes back for re-scoring through
//!   [`crate::baseline::IdealNetworks::recompute_dirty`].
//! * [`ActionIndex::apply_deltas`] goes further and returns a
//!   [`DeltaOutcome`]: the changing users plus the exact `(affected,
//!   changed)` pairs whose score grew. Because additions only *increase*
//!   scores, [`crate::baseline::IdealNetworks::apply_change_batch`] can
//!   patch a lightly affected user's network from a few pair merges and
//!   reserve full counting sweeps for the changing users — provably
//!   matching a from-scratch
//!   [`crate::baseline::IdealNetworks::compute`].
//!
//! The per-user loop is embarrassingly parallel and runs through
//! [`p3q_sim::parallel_map_chunks`], which guarantees output identical for
//! every worker-thread count (set `P3Q_THREADS=1` to pin).
//!
//! ## On-demand resolution: one user, straight off the shards
//!
//! The dense sweep above is the right shape when *every* network is needed
//! (a global [`crate::baseline::IdealNetworks::compute`]). When only the
//! users who actually issue queries matter, [`ActionIndex::resolve_top_similar`]
//! answers a single "top-k most similar peers of `u`" without any dense
//! per-population state: it opens one [`PostingCursor`] per action of `u`'s
//! profile — each lazily delta-varint-decoding its compressed posting run in
//! ascending user-id order — and drives `p3q_topk::streaming_count_topk`
//! over them, Fagin-style threshold termination included. Users sharing
//! nothing with `u` are never touched, and the scan stops early once the
//! threshold bound proves the top-k final. The result is byte-identical to
//! the [`Self::top_similar`] sweep; [`crate::resolver::OnDemandNetworks`]
//! adds per-user memoization with exact [`DeltaOutcome`]-driven
//! invalidation on top.

use p3q_trace::codec::{
    decode_group, encode_sorted_u32s_grouped, for_each_sorted_u32_grouped_padded, read_varint,
    write_varint, VarintReader, GROUP_DECODE_SLACK, GROUP_SIZE,
};
use p3q_trace::{ActionDictionary, Dataset, PackedProfile, Profile, TaggingAction, UserId};

/// Distinct action ids a shard aims to hold when the shard count is derived
/// from the dataset size ([`ActionIndex::build`]).
const TARGET_KEYS_PER_SHARD: usize = 1024;

/// Upper bound on the number of shards, so shard routing stays cheap even
/// for very large traces.
const MAX_SHARDS: usize = 1024;

/// Posting slots per offset-directory group: random access decodes at most
/// this many byte-length prefixes before reaching its posting. 8 trades a
/// few extra varint reads per lookup against directory size.
const IDS_PER_GROUP: usize = 8;

/// Groups per directory anchor in the [`GroupDirectory::Compact`] layout:
/// one absolute `u32` anchor every 8 groups (= 64 posting slots), `u16`
/// anchor-relative deltas in between — 2.5 bytes per group (~0.31 per key)
/// against the 4 of an absolute-`u32`-per-group directory.
const GROUPS_PER_ANCHOR: usize = 8;

/// Per-key bound on `|affected members| × |gainers|` pair emission in
/// [`ActionIndex::apply_deltas`] (affected members = posting-list members
/// that are not themselves gainers of the key). A very popular gained
/// action would emit a quadratic number of `(member, gainer)` pairs;
/// beyond this bound its posting members go to [`DeltaOutcome::resweep`]
/// (full re-score) instead, which costs only the posting length.
const PAIR_EMISSION_CAP: usize = 4096;

/// Scratch space for one scoring sweep: a dense per-user counter, the list
/// of touched slots so that clearing costs `O(touched)`, and a reusable
/// action-id buffer for the profile being scored.
#[derive(Debug, Clone)]
pub struct SimilarityScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
    ids: Vec<u32>,
}

impl SimilarityScratch {
    /// Creates scratch space for a population of `num_users`.
    pub fn new(num_users: usize) -> Self {
        Self {
            counts: vec![0; num_users],
            touched: Vec::new(),
            ids: Vec::new(),
        }
    }
}

/// The exact effect of one delta batch on pairwise similarity scores,
/// returned by [`ActionIndex::apply_deltas`].
///
/// Additions can only increase scores, so this is a complete description of
/// what moved: a changing user's score may have grown against anyone, while
/// a non-changing user's score grew only against the partners listed for
/// her in `pairs` — which is what lets
/// [`crate::baseline::IdealNetworks::apply_change_batch`] patch most
/// networks from a few exact pair merges instead of full sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Users that genuinely gained at least one new action, sorted by id.
    pub changed: Vec<UserId>,
    /// `(affected, changed)` pairs whose similarity score increased, sorted
    /// and deduplicated. Pairs whose affected side is itself a changing
    /// user are omitted — changing users are fully re-swept anyway.
    pub pairs: Vec<(UserId, UserId)>,
    /// Users affected through a *very popular* gained action (posting list
    /// × gainers beyond [`PAIR_EMISSION_CAP`]), reported for full
    /// re-scoring instead of per-pair emission — this bounds the outcome's
    /// size by the touched posting mass rather than its square. Sorted and
    /// deduplicated.
    pub resweep: Vec<UserId>,
}

impl DeltaOutcome {
    /// Every user whose similarity score against someone changed (the
    /// changing users plus every affected partner), sorted by id. These are
    /// exactly the users whose ideal personal network may differ from
    /// before the batch.
    pub fn dirty_users(&self) -> Vec<UserId> {
        let mut dirty: Vec<UserId> = self
            .changed
            .iter()
            .copied()
            .chain(self.resweep.iter().copied())
            .chain(self.pairs.iter().map(|&(affected, _)| affected))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Returns `true` if the batch changed nothing (every delta action was
    /// already present).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

/// Resident-byte report of one [`ActionIndex`], split by column, next to
/// the uncompressed CSR layout the first index generation used (plain
/// `u64` keys, `u32` offsets, `u32` posting entries).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexMemory {
    /// Bytes of the interned dictionary (compressed keys + dynamics tail).
    pub dictionary_bytes: usize,
    /// Bytes of the per-shard group offset directories.
    pub directory_bytes: usize,
    /// Bytes of the compressed posting blobs (length prefixes + delta runs).
    pub postings_bytes: usize,
    /// Total resident bytes of the index.
    pub total_bytes: usize,
    /// Bytes the same content would take in the uncompressed CSR layout:
    /// 8 per distinct key, 4 per key of offsets, 4 per posting entry.
    pub csr_equivalent_bytes: usize,
    /// Number of posting entries (total actions indexed).
    pub postings: usize,
    /// Number of distinct actions with a non-empty posting list.
    pub distinct_actions: usize,
}

/// The per-shard group offset directory: byte offset of posting slot
/// `g * IDS_PER_GROUP` for every group `g`.
#[derive(Debug, Clone)]
enum GroupDirectory {
    /// Anchored layout (the common case): `anchors[a]` is the absolute byte
    /// offset of group `a * GROUPS_PER_ANCHOR`, `deltas[g]` the `u16`
    /// offset of group `g` relative to its window's anchor. Fits whenever
    /// no [`GROUPS_PER_ANCHOR`]-group window spans more than `u16::MAX`
    /// blob bytes.
    Compact { anchors: Vec<u32>, deltas: Vec<u16> },
    /// Absolute `u32` per group, for the rare shard whose very popular
    /// postings overflow a `u16` window; keeps lookups O(1) either way.
    Wide(Vec<u32>),
}

impl Default for GroupDirectory {
    fn default() -> Self {
        GroupDirectory::Compact {
            anchors: Vec::new(),
            deltas: Vec::new(),
        }
    }
}

impl GroupDirectory {
    /// Compacts absolute per-group offsets, falling back to the wide layout
    /// when any anchor-relative delta overflows `u16`.
    fn from_offsets(offsets: Vec<u32>) -> Self {
        let mut anchors = Vec::with_capacity(offsets.len().div_ceil(GROUPS_PER_ANCHOR));
        let mut deltas = Vec::with_capacity(offsets.len());
        for (g, &off) in offsets.iter().enumerate() {
            if g % GROUPS_PER_ANCHOR == 0 {
                anchors.push(off);
            }
            let anchor = *anchors.last().expect("anchor pushed for window start");
            match u16::try_from(off - anchor) {
                Ok(d) => deltas.push(d),
                Err(_) => return GroupDirectory::Wide(offsets),
            }
        }
        GroupDirectory::Compact { anchors, deltas }
    }

    /// Absolute byte offset of group `group`.
    #[inline]
    fn offset(&self, group: usize) -> usize {
        match self {
            GroupDirectory::Compact { anchors, deltas } => {
                anchors[group / GROUPS_PER_ANCHOR] as usize + deltas[group] as usize
            }
            GroupDirectory::Wide(offsets) => offsets[group] as usize,
        }
    }

    /// Resident heap bytes of the directory.
    fn heap_bytes(&self) -> usize {
        match self {
            GroupDirectory::Compact { anchors, deltas } => {
                anchors.len() * std::mem::size_of::<u32>()
                    + deltas.len() * std::mem::size_of::<u16>()
            }
            GroupDirectory::Wide(offsets) => offsets.len() * std::mem::size_of::<u32>(),
        }
    }
}

/// One id-range shard: a compressed posting block over the contiguous
/// action-id run `start_id .. start_id + num_ids`.
///
/// `blob` holds, per id in order, `[byte-length varint][first id: LEB128]
/// [deltas: group-varint]` (length 0 = empty posting); `directory` maps
/// group `g` to the byte offset of slot `g * IDS_PER_GROUP`.
#[derive(Debug, Clone, Default)]
struct PostingShard {
    start_id: usize,
    num_ids: usize,
    directory: GroupDirectory,
    blob: Vec<u8>,
}

impl PostingShard {
    /// Builds a shard from decoded posting lists (empty lists allowed).
    fn encode(start_id: usize, postings: &[Vec<u32>]) -> Self {
        let mut offsets = Vec::with_capacity(postings.len().div_ceil(IDS_PER_GROUP));
        let mut blob = Vec::new();
        let mut run = Vec::new();
        for (rel, posting) in postings.iter().enumerate() {
            if rel % IDS_PER_GROUP == 0 {
                offsets.push(u32::try_from(blob.len()).expect("shard blob exceeds 4 GiB"));
            }
            run.clear();
            encode_sorted_u32s_grouped(posting, &mut run);
            write_varint(run.len() as u64, &mut blob);
            blob.extend_from_slice(&run);
        }
        // Decode slack: every run's backing slice reaches this far past its
        // logical end, so the counting sweep's fused kernel never needs a
        // bounds-checked tail path (see `for_each_sorted_u32_grouped_padded`).
        blob.resize(blob.len() + GROUP_DECODE_SLACK, 0);
        Self {
            start_id,
            num_ids: postings.len(),
            directory: GroupDirectory::from_offsets(offsets),
            blob,
        }
    }

    /// Byte range of the posting at relative slot `rel`, plus nothing else:
    /// walks at most `IDS_PER_GROUP - 1` length prefixes from the group
    /// start.
    fn posting_bytes(&self, rel: usize) -> &[u8] {
        let (bytes, len) = self.posting_run(rel);
        &bytes[..len]
    }

    /// The posting at relative slot `rel` as a padded run: the backing
    /// slice reaches to the end of the blob (whose trailing
    /// [`GROUP_DECODE_SLACK`] zero bytes guarantee the fused kernel's slack
    /// invariant for every run, including the last), plus the run's logical
    /// byte length.
    fn posting_run(&self, rel: usize) -> (&[u8], usize) {
        debug_assert!(rel < self.num_ids);
        let group_start = self.directory.offset(rel / IDS_PER_GROUP);
        let mut reader = VarintReader::new(&self.blob[group_start..]);
        for _ in 0..rel % IDS_PER_GROUP {
            let len = reader.next_varint().expect("slot inside the shard") as usize;
            reader.skip(len);
        }
        let len = reader.next_varint().expect("slot inside the shard") as usize;
        let pos = self.blob.len() - reader.remaining();
        (&self.blob[pos..], len)
    }

    /// Decodes the posting at relative slot `rel`.
    fn posting(&self, rel: usize) -> impl Iterator<Item = u32> + '_ {
        let bytes = self.posting_bytes(rel);
        decode_run(bytes)
    }

    /// Decodes every posting list into owned vectors (the mutation path).
    fn decode_all(&self) -> Vec<Vec<u32>> {
        let mut out = Vec::with_capacity(self.num_ids);
        let mut pos = 0usize;
        for _ in 0..self.num_ids {
            let len = read_varint(&self.blob, &mut pos) as usize;
            out.push(decode_run(&self.blob[pos..pos + len]).collect());
            pos += len;
        }
        out
    }
}

/// Decodes one posting run (the byte-length prefix already consumed) into
/// ascending user ids — the shared grouped-codec decoder.
fn decode_run(bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    p3q_trace::codec::decode_sorted_u32s_grouped(bytes)
}

/// A counting inverted index over every distinct tagging action of a
/// dataset: dictionary-keyed, sharded by id range, postings delta-varint
/// compressed (see the module docs for the storage model).
///
/// Building the index costs one sort of the `(action, user)` pairs —
/// `O(A log A)` for `A` total actions — after which profile dynamics are
/// absorbed by [`Self::apply_deltas`] / [`Self::remove_user`] at the cost
/// of recompressing only the affected shards.
#[derive(Debug, Clone)]
pub struct ActionIndex {
    dict: ActionDictionary,
    shards: Vec<PostingShard>,
    /// Ids per shard, frozen at build time; the last shard absorbs ids
    /// interned later (dictionary tail).
    span: usize,
    num_users: usize,
    /// Number of ids with a non-empty posting list (removals leave empty
    /// slots behind, which a fresh build would not contain).
    live_keys: usize,
    /// Total posting entries, maintained across mutations so the memory
    /// report never has to decode the blobs.
    num_postings: usize,
}

impl ActionIndex {
    /// Builds the index over every profile of the dataset, interning the
    /// action dictionary and choosing the shard count from the number of
    /// distinct actions (about [`TARGET_KEYS_PER_SHARD`] ids per shard, at
    /// most [`MAX_SHARDS`]).
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_with_shards(dataset, 0)
    }

    /// [`Self::build`] with an explicit shard count (`0` derives it from the
    /// dataset size). Exposed for tests and tuning; the shard count changes
    /// only the incremental-update granularity, never any query result.
    pub fn build_with_shards(dataset: &Dataset, num_shards: usize) -> Self {
        // One sort of the (key, user) pairs yields everything at once: the
        // sorted distinct keys *are* the dictionary (rank = id), and
        // replacing each key by its running rank turns the pairs into
        // (id, user) postings — no per-action dictionary lookups.
        let total: usize = dataset.iter().map(|(_, p)| p.len()).sum();
        let mut key_pairs: Vec<(u64, u32)> = Vec::with_capacity(total);
        for (user, profile) in dataset.iter() {
            for action in profile.iter() {
                key_pairs.push((p3q_trace::action_key(action), user.0));
            }
        }
        key_pairs.sort_unstable();

        let mut keys: Vec<u64> = Vec::new();
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(key_pairs.len());
        for (key, user) in key_pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
            }
            pairs.push((u32::try_from(keys.len() - 1).expect("id overflow"), user));
        }
        let dict = ActionDictionary::from_sorted_keys(&keys);
        let distinct = dict.len();

        let requested = if num_shards > 0 {
            num_shards
        } else {
            distinct
                .div_ceil(TARGET_KEYS_PER_SHARD)
                .clamp(1, MAX_SHARDS)
        };
        let span = distinct.div_ceil(requested).max(1);
        let shard_count = distinct.div_ceil(span).max(1);

        let mut shards = Vec::with_capacity(shard_count);
        let mut cursor = 0usize;
        for s in 0..shard_count {
            let lo = (s * span).min(distinct);
            let hi = ((s + 1) * span).min(distinct);
            let mut postings: Vec<Vec<u32>> = vec![Vec::new(); hi - lo];
            while cursor < pairs.len() && (pairs[cursor].0 as usize) < hi {
                let (id, user) = pairs[cursor];
                postings[id as usize - lo].push(user);
                cursor += 1;
            }
            shards.push(PostingShard::encode(lo, &postings));
        }
        Self {
            dict,
            shards,
            span,
            num_users: dataset.num_users(),
            live_keys: distinct,
            num_postings: pairs.len(),
        }
    }

    /// Number of users covered by the index.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of distinct tagging actions with a non-empty posting list —
    /// exactly what a fresh build over the current profiles would contain.
    pub fn distinct_actions(&self) -> usize {
        self.live_keys
    }

    /// Number of id-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The interned action dictionary backing the index.
    pub fn dictionary(&self) -> &ActionDictionary {
        &self.dict
    }

    /// The shard an action id routes to (the last shard is open above, so
    /// dictionary-tail ids always have a home).
    fn shard_of(&self, id: usize) -> usize {
        (id / self.span).min(self.shards.len() - 1)
    }

    /// The users whose profile contains `action`, in ascending order.
    pub fn taggers_of(&self, action: &TaggingAction) -> Vec<u32> {
        let Some(id) = self.dict.id_of(action) else {
            return Vec::new();
        };
        let shard = &self.shards[self.shard_of(id.index())];
        let rel = id.index() - shard.start_id;
        if rel >= shard.num_ids {
            return Vec::new();
        }
        shard.posting(rel).collect()
    }

    /// Patches the index with one user's newly added tagging actions and
    /// returns the effects (see [`Self::apply_deltas`]).
    pub fn apply_delta(&mut self, user: UserId, new_actions: &[TaggingAction]) -> DeltaOutcome {
        self.apply_deltas(std::iter::once((user, new_actions)))
    }

    /// Patches the index with a batch of profile additions: for every
    /// `(user, new_actions)` pair the user is inserted into the posting
    /// lists of her new actions (genuinely new actions are interned into
    /// the dictionary tail first). Actions the user already has in the
    /// index are skipped (set semantics, matching [`Profile::extend`]), so
    /// the deltas may safely repeat existing actions.
    ///
    /// Only the shards whose id range contains a delta are decoded and
    /// recompressed; untouched shards are never read.
    ///
    /// Returns a [`DeltaOutcome`] describing exactly which pairwise scores
    /// changed: the changing users themselves (every one of their scores
    /// may have moved) and, for everyone else, the `(affected, changed)`
    /// pairs whose overlap grew. Since additions can only *increase*
    /// scores, that is all the information needed to update the ideal
    /// networks exactly — see
    /// [`crate::baseline::IdealNetworks::apply_change_batch`].
    ///
    /// # Panics
    /// Panics if a delta names a user outside the indexed population.
    pub fn apply_deltas<'a, I>(&mut self, deltas: I) -> DeltaOutcome
    where
        I: IntoIterator<Item = (UserId, &'a [TaggingAction])>,
    {
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (user, actions) in deltas {
            assert!(
                user.index() < self.num_users,
                "delta for unknown user {user}"
            );
            for action in actions {
                let id = self.dict.intern(action);
                pairs.push((id.0, user.0));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.is_empty() {
            return DeltaOutcome::default();
        }

        let mut changed: Vec<u32> = Vec::new();
        let mut score_pairs: Vec<(u32, u32)> = Vec::new();
        let mut resweep: Vec<u32> = Vec::new();
        let mut start = 0usize;
        while start < pairs.len() {
            let sidx = self.shard_of(pairs[start].0 as usize);
            let last = sidx == self.shards.len() - 1;
            let shard = &mut self.shards[sidx];
            // The last shard is open above: freshly interned tail ids route
            // into it and merge_into_shard grows it with empty slots during
            // the same recompression pass.
            let shard_end = if last {
                usize::MAX
            } else {
                shard.start_id + shard.num_ids
            };
            let end = start + pairs[start..].partition_point(|&(id, _)| (id as usize) < shard_end);
            debug_assert!(end > start, "every delta id routes into its shard");
            let entries_before = changed.len();
            let gained = merge_into_shard(
                shard,
                &pairs[start..end],
                &mut changed,
                &mut score_pairs,
                &mut resweep,
            );
            self.live_keys += gained;
            // Every gainer reported by the merge is exactly one new posting
            // entry (duplicate delta actions never reach `changed`).
            self.num_postings += changed.len() - entries_before;
            start = end;
        }
        changed.sort_unstable();
        changed.dedup();
        // The per-key emission already skips members that gained the same
        // key; drop the pairs whose affected side changed via *another* key
        // too — changing users are fully re-swept downstream regardless.
        score_pairs.retain(|&(affected, _)| changed.binary_search(&affected).is_err());
        score_pairs.sort_unstable();
        score_pairs.dedup();
        resweep.sort_unstable();
        resweep.dedup();
        DeltaOutcome {
            changed: changed.into_iter().map(UserId).collect(),
            pairs: score_pairs
                .into_iter()
                .map(|(v, u)| (UserId(v), UserId(u)))
                .collect(),
            resweep: resweep.into_iter().map(UserId).collect(),
        }
    }

    /// Removes a departed user from the index (churn). `profile` must be the
    /// profile the index currently holds for her — her posting entries are
    /// deleted from exactly those actions' lists. Only the shards covering
    /// her ids are recompressed; an emptied posting list stops counting as
    /// a distinct action (a from-scratch build would not contain it).
    ///
    /// Returns the dirty users: everyone who shared an action with her (her
    /// score against each of them drops), plus the user herself.
    pub fn remove_user(&mut self, user: UserId, profile: &Profile) -> Vec<UserId> {
        let mut ids = Vec::new();
        self.dict.ids_of_profile_into(profile, &mut ids);
        if ids.is_empty() {
            return Vec::new();
        }
        let mut dirty: Vec<u32> = Vec::new();
        let mut start = 0usize;
        while start < ids.len() {
            let sidx = self.shard_of(ids[start] as usize);
            let shard = &mut self.shards[sidx];
            let shard_end = shard.start_id + shard.num_ids;
            let end = start + ids[start..].partition_point(|&id| (id as usize) < shard_end);
            debug_assert!(end > start, "every profile id routes into its shard");
            let (emptied, removed) =
                strip_user_from_shard(shard, &ids[start..end], user.0, &mut dirty);
            self.live_keys -= emptied;
            self.num_postings -= removed;
            start = end;
        }
        finish_dirty(dirty)
    }

    /// Scores `profile` against every indexed user in one counting sweep.
    ///
    /// After the call, `scratch.counts[v]` holds `|profile ∩ Profile(v)|`
    /// for every user `v` in `scratch.touched` (slots outside `touched` are
    /// zero). `exclude` removes one user (the profile's owner) from the
    /// result. The caller must drain the scratch through
    /// [`Self::collect_top`] or clear it via the next `accumulate` call —
    /// the sweep starts by resetting only previously touched slots.
    pub fn accumulate(&self, profile: &Profile, exclude: UserId, scratch: &mut SimilarityScratch) {
        // Intern the profile once (sorted dense ids), then every posting
        // lookup is positional: shard by id range, slot by offset — no
        // per-action key search.
        self.dict.ids_of_profile_into(profile, &mut scratch.ids);
        self.sweep_resolved_ids(exclude, scratch);
    }

    /// [`Self::accumulate`] straight off the at-rest bytes: resolves the
    /// packed profile's action ids through the decode-on-the-fly iterator,
    /// never materializing an unpacked [`Profile`]. Counts are identical to
    /// the decoded path by construction — both walk the same id set.
    pub fn accumulate_packed(
        &self,
        packed: &PackedProfile,
        exclude: UserId,
        scratch: &mut SimilarityScratch,
    ) {
        self.dict
            .ids_of_actions_into(packed.actions(), &mut scratch.ids);
        self.sweep_resolved_ids(exclude, scratch);
    }

    /// The counting sweep over already-resolved profile ids in
    /// `scratch.ids` — the shared core of [`Self::accumulate`] and
    /// [`Self::accumulate_packed`].
    fn sweep_resolved_ids(&self, exclude: UserId, scratch: &mut SimilarityScratch) {
        debug_assert_eq!(scratch.counts.len(), self.num_users);
        for &slot in &scratch.touched {
            scratch.counts[slot as usize] = 0;
        }
        scratch.touched.clear();

        let counts = &mut scratch.counts;
        let touched = &mut scratch.touched;
        for &id in &scratch.ids {
            let shard = &self.shards[self.shard_of(id as usize)];
            let rel = id as usize - shard.start_id;
            if rel >= shard.num_ids {
                continue;
            }
            // Fused group-varint decode, four posting deltas per control
            // byte, every load bounds-check-free thanks to the blob's
            // decode slack — this loop carries the whole counting sweep.
            let (bytes, run_len) = shard.posting_run(rel);
            for_each_sorted_u32_grouped_padded(bytes, run_len, |user| {
                bump_count(counts, touched, exclude.0, user);
            });
        }
    }

    /// Extracts the top-`network_size` scored users from a finished sweep:
    /// `(user, score)` pairs with positive scores, in descending score order
    /// with ties broken by ascending user id — exactly the ideal
    /// personal-network ordering of [`crate::baseline::IdealNetworks`].
    pub fn collect_top(
        &self,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        if network_size == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(UserId, u64)> = scratch
            .touched
            .iter()
            .map(|&user| (UserId(user), u64::from(scratch.counts[user as usize])))
            .collect();
        let by_rank = |a: &(UserId, u64), b: &(UserId, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if scored.len() > network_size {
            // Partial selection: only the retained prefix needs a full sort.
            scored.select_nth_unstable_by(network_size - 1, by_rank);
            scored.truncate(network_size);
        }
        scored.sort_unstable_by(by_rank);
        scored
    }

    /// Resolves the top-`network_size` most similar users to `user` **on
    /// demand**, without the dense per-population accumulator: one
    /// [`PostingCursor`] per profile action streams its compressed posting
    /// run into `p3q_topk::streaming_count_topk`, which merges the cursors
    /// in ascending user-id order and early-terminates once the threshold
    /// bound proves the top-k final.
    ///
    /// The ranking is byte-identical to [`Self::top_similar`] (score
    /// descending, ties by ascending id, positive scores only, truncated to
    /// `network_size`); the returned [`ResolveProbe`] reports how much
    /// posting mass the threshold actually had to scan.
    pub fn resolve_top_similar(
        &self,
        dataset: &Dataset,
        user: UserId,
        network_size: usize,
    ) -> (Vec<(UserId, u64)>, ResolveProbe) {
        let mut ids = Vec::new();
        self.dict
            .ids_of_profile_into(dataset.profile(user), &mut ids);
        self.resolve_from_ids(&ids, user, network_size)
    }

    /// [`Self::resolve_top_similar`] straight off the at-rest bytes: the
    /// querying user's profile stays packed end to end — ids are resolved
    /// through the decode-on-the-fly iterator and the posting cursors
    /// stream compressed runs, so nothing is ever materialized. The ranking
    /// and probe are byte-identical to the decoded path.
    pub fn resolve_top_similar_packed(
        &self,
        packed: &PackedProfile,
        user: UserId,
        network_size: usize,
    ) -> (Vec<(UserId, u64)>, ResolveProbe) {
        let mut ids = Vec::new();
        self.dict.ids_of_actions_into(packed.actions(), &mut ids);
        self.resolve_from_ids(&ids, user, network_size)
    }

    /// The streaming top-k merge over already-resolved profile ids — the
    /// shared core of the on-demand resolution entry points.
    fn resolve_from_ids(
        &self,
        ids: &[u32],
        user: UserId,
        network_size: usize,
    ) -> (Vec<(UserId, u64)>, ResolveProbe) {
        let sources: Vec<PostingCursor<'_>> = ids
            .iter()
            .filter_map(|&id| {
                let shard = &self.shards[self.shard_of(id as usize)];
                let rel = id as usize - shard.start_id;
                (rel < shard.num_ids).then(|| PostingCursor::new(shard.posting_bytes(rel), user.0))
            })
            .collect();
        let outcome = p3q_topk::streaming_count_topk(sources, network_size);
        let probe = ResolveProbe {
            positions_scanned: outcome.positions_scanned,
            early_terminated: outcome.early_terminated,
        };
        let ranking = outcome
            .ranking
            .into_iter()
            .map(|(raw, count)| (UserId(raw), count))
            .collect();
        (ranking, probe)
    }

    /// Convenience wrapper: the top-`network_size` most similar users to
    /// `user`, using (and resetting) `scratch`.
    pub fn top_similar(
        &self,
        dataset: &Dataset,
        user: UserId,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        self.accumulate(dataset.profile(user), user, scratch);
        self.collect_top(network_size, scratch)
    }

    /// [`Self::top_similar`] with the querying profile served packed (see
    /// [`Self::accumulate_packed`]).
    pub fn top_similar_packed(
        &self,
        packed: &PackedProfile,
        user: UserId,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        self.accumulate_packed(packed, user, scratch);
        self.collect_top(network_size, scratch)
    }

    /// Resident-byte report of the compressed layout, next to the
    /// uncompressed CSR equivalent (see [`IndexMemory`]).
    pub fn memory(&self) -> IndexMemory {
        let directory_bytes: usize = self.shards.iter().map(|s| s.directory.heap_bytes()).sum();
        let postings_bytes: usize = self.shards.iter().map(|s| s.blob.len()).sum();
        let postings = self.num_postings;
        let dictionary_bytes = self.dict.heap_bytes();
        let csr_equivalent_bytes = self.live_keys
            * (std::mem::size_of::<u64>() + std::mem::size_of::<u32>())
            + postings * std::mem::size_of::<u32>();
        IndexMemory {
            dictionary_bytes,
            directory_bytes,
            postings_bytes,
            total_bytes: dictionary_bytes + directory_bytes + postings_bytes,
            csr_equivalent_bytes,
            postings,
            distinct_actions: self.live_keys,
        }
    }
}

/// Scan accounting of one [`ActionIndex::resolve_top_similar`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveProbe {
    /// Posting entries decoded across all of the profile's cursors.
    pub positions_scanned: usize,
    /// `true` when the threshold bound stopped the merge before the posting
    /// runs were exhausted.
    pub early_terminated: bool,
}

/// A lazily decoding cursor over one compressed posting run: yields the
/// ascending user ids of the `[first: LEB128][deltas: group-varint]` bytes
/// one at a time (buffering one decoded group), skipping `exclude` (the
/// profile's owner) — the sorted-access source
/// [`ActionIndex::resolve_top_similar`] feeds into
/// `p3q_topk::streaming_count_topk`. Decoding is incremental, so an
/// early-terminated merge never pays for the posting tail.
#[derive(Debug, Clone)]
pub struct PostingCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    buf: [u32; GROUP_SIZE],
    buf_len: u8,
    buf_pos: u8,
    prev: u32,
    first: bool,
    exclude: u32,
}

impl<'a> PostingCursor<'a> {
    /// Opens a cursor over one posting's run bytes (the byte-length prefix
    /// already consumed, as returned by `posting_bytes`).
    fn new(bytes: &'a [u8], exclude: u32) -> Self {
        Self {
            bytes,
            pos: 0,
            buf: [0; GROUP_SIZE],
            buf_len: 0,
            buf_pos: 0,
            prev: 0,
            first: true,
            exclude,
        }
    }
}

impl Iterator for PostingCursor<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.first {
                if self.bytes.is_empty() {
                    return None;
                }
                self.first = false;
                self.prev = read_varint(self.bytes, &mut self.pos) as u32;
            } else {
                if self.buf_pos == self.buf_len {
                    self.buf_len = decode_group(self.bytes, &mut self.pos, &mut self.buf) as u8;
                    self.buf_pos = 0;
                    if self.buf_len == 0 {
                        return None;
                    }
                }
                self.prev += self.buf[self.buf_pos as usize];
                self.buf_pos += 1;
            }
            if self.prev != self.exclude {
                return Some(self.prev);
            }
        }
    }
}

/// Bumps one posting member's sweep counter, tracking first touches —
/// shared by every counting-sweep entry point so the packed and decoded
/// paths count identically.
#[inline]
fn bump_count(counts: &mut [u32], touched: &mut Vec<u32>, exclude: u32, user: u32) {
    if user == exclude {
        return;
    }
    let slot = &mut counts[user as usize];
    if *slot == 0 {
        touched.push(user);
    }
    *slot += 1;
}

/// Sorts, dedups and wraps a raw dirty-user accumulation.
fn finish_dirty(mut dirty: Vec<u32>) -> Vec<UserId> {
    dirty.sort_unstable();
    dirty.dedup();
    dirty.into_iter().map(UserId).collect()
}

/// Merges sorted, deduplicated delta `(id, user)` pairs into one shard (all
/// ids must fall in its range) by decoding, patching and recompressing it.
/// Every id that genuinely gains a tagger reports its gainers into
/// `changed` and the `(posting member, gainer)` pairs whose score grew into
/// `score_pairs` — unless the id is so popular that the pair product
/// exceeds [`PAIR_EMISSION_CAP`], in which case its posting members go to
/// `resweep` instead. Returns how many previously empty postings became
/// non-empty (the live-key delta).
fn merge_into_shard(
    shard: &mut PostingShard,
    pairs: &[(u32, u32)],
    changed: &mut Vec<u32>,
    score_pairs: &mut Vec<(u32, u32)>,
    resweep: &mut Vec<u32>,
) -> usize {
    let mut postings = shard.decode_all();
    // Tail ids interned by this batch may reach past the (open-above) last
    // shard's current coverage: grow it with empty slots in the same
    // recompression pass.
    let max_rel = pairs.last().expect("merge called with deltas").0 as usize - shard.start_id;
    if max_rel >= postings.len() {
        postings.resize(max_rel + 1, Vec::new());
    }
    let mut went_live = 0usize;
    let mut gainers: Vec<u32> = Vec::new();

    let mut j = 0usize;
    while j < pairs.len() {
        let id = pairs[j].0;
        let rel = id as usize - shard.start_id;
        let delta_lo = j;
        while j < pairs.len() && pairs[j].0 == id {
            j += 1;
        }
        let delta = &pairs[delta_lo..j];
        let posting = &mut postings[rel];
        let was_empty = posting.is_empty();

        // Two-pointer union of the old posting list and the delta users;
        // a delta user already present is a duplicate action and adds
        // nothing.
        gainers.clear();
        let mut merged = Vec::with_capacity(posting.len() + delta.len());
        let (mut a, mut b) = (0usize, 0usize);
        while a < posting.len() || b < delta.len() {
            match (
                (a < posting.len()).then(|| posting[a]),
                (b < delta.len()).then(|| delta[b].1),
            ) {
                (Some(x), Some(y)) if x < y => {
                    merged.push(x);
                    a += 1;
                }
                (Some(x), Some(y)) if x > y => {
                    merged.push(y);
                    b += 1;
                    gainers.push(y);
                }
                (Some(x), Some(_)) => {
                    merged.push(x);
                    a += 1;
                    b += 1;
                }
                (Some(x), None) => {
                    merged.push(x);
                    a += 1;
                }
                (None, Some(y)) => {
                    merged.push(y);
                    b += 1;
                    gainers.push(y);
                }
                (None, None) => unreachable!("loop condition guarantees a side"),
            }
        }
        *posting = merged;
        if was_empty && !posting.is_empty() {
            went_live += 1;
        }
        if !gainers.is_empty() {
            changed.extend_from_slice(&gainers);
            // Everyone on the final posting list now overlaps each gainer
            // on this key; their pairwise scores grew by one. Pairs whose
            // affected side is itself a gainer are skipped — gainers get a
            // full sweep downstream anyway — so they neither bloat the
            // outcome nor count toward the emission cap.
            let affected_members = posting.len() - gainers.len();
            if affected_members.saturating_mul(gainers.len()) > PAIR_EMISSION_CAP {
                resweep.extend_from_slice(posting);
            } else {
                for &member in posting.iter() {
                    // `gainers` is in ascending user order (it follows the
                    // sorted delta pairs), so membership is a binary search.
                    if gainers.binary_search(&member).is_ok() {
                        continue;
                    }
                    for &gainer in &gainers {
                        score_pairs.push((member, gainer));
                    }
                }
            }
        }
    }
    *shard = PostingShard::encode(shard.start_id, &postings);
    went_live
}

/// Removes `user` from the posting lists of `ids` (sorted, all inside this
/// shard's range) by decoding, stripping and recompressing the shard. Every
/// posting list the user was actually on contributes its pre-removal
/// members to `dirty`. Returns `(emptied postings, removed entries)` — the
/// live-key and posting-count deltas.
fn strip_user_from_shard(
    shard: &mut PostingShard,
    ids: &[u32],
    user: u32,
    dirty: &mut Vec<u32>,
) -> (usize, usize) {
    let mut postings = shard.decode_all();
    let mut emptied = 0usize;
    let mut removed = 0usize;
    for &id in ids {
        let rel = id as usize - shard.start_id;
        let posting = &mut postings[rel];
        if let Ok(pos) = posting.binary_search(&user) {
            dirty.extend_from_slice(posting);
            posting.remove(pos);
            removed += 1;
            if posting.is_empty() {
                emptied += 1;
            }
        }
    }
    *shard = PostingShard::encode(shard.start_id, &postings);
    (emptied, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3q_trace::{ItemId, TagId};

    fn act(item: u32, tag: u32) -> TaggingAction {
        TaggingAction::new(ItemId(item), TagId(tag))
    }

    fn dataset() -> Dataset {
        let p0 = Profile::from_actions(vec![act(1, 1), act(2, 2), act(3, 3)]);
        let p1 = Profile::from_actions(vec![act(1, 1), act(2, 2)]);
        let p2 = Profile::from_actions(vec![act(3, 3), act(9, 9)]);
        let p3 = Profile::from_actions(vec![act(100, 100)]);
        Dataset::new(vec![p0, p1, p2, p3], 200, 200)
    }

    /// Semantic equality with a freshly built index, independent of shard
    /// layout: same distinct actions and same posting list per action.
    fn assert_matches_fresh_build(index: &ActionIndex, dataset: &Dataset) {
        let fresh = ActionIndex::build(dataset);
        assert_eq!(index.distinct_actions(), fresh.distinct_actions());
        for (_, profile) in dataset.iter() {
            for action in profile.iter() {
                assert_eq!(
                    index.taggers_of(action),
                    fresh.taggers_of(action),
                    "posting list diverged for {action}"
                );
            }
        }
    }

    #[test]
    fn taggers_lists_are_sorted_and_complete() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        assert_eq!(index.num_users(), 4);
        assert_eq!(index.distinct_actions(), 5);
        assert_eq!(index.taggers_of(&act(1, 1)), vec![0, 1]);
        assert_eq!(index.taggers_of(&act(3, 3)), vec![0, 2]);
        assert_eq!(index.taggers_of(&act(100, 100)), vec![3]);
        assert!(index.taggers_of(&act(42, 42)).is_empty());
    }

    #[test]
    fn sharded_build_answers_identically() {
        let d = dataset();
        for shards in 1..=6 {
            let index = ActionIndex::build_with_shards(&d, shards);
            assert!((1..=shards).contains(&index.num_shards()));
            assert_eq!(index.distinct_actions(), 5);
            assert_eq!(index.taggers_of(&act(1, 1)), vec![0, 1]);
            assert_eq!(index.taggers_of(&act(100, 100)), vec![3]);
            assert!(index.taggers_of(&act(0, 0)).is_empty());
            assert!(index.taggers_of(&act(150, 150)).is_empty());
        }
    }

    #[test]
    fn counting_sweep_matches_pairwise_merge() {
        let d = dataset();
        for shards in [1, 3] {
            let index = ActionIndex::build_with_shards(&d, shards);
            let mut scratch = SimilarityScratch::new(d.num_users());
            for (user, profile) in d.iter() {
                index.accumulate(profile, user, &mut scratch);
                for (other, other_profile) in d.iter() {
                    let expected = if other == user {
                        0
                    } else {
                        profile.common_actions(other_profile) as u32
                    };
                    assert_eq!(
                        scratch.counts[other.index()],
                        expected,
                        "user {user} vs {other} ({shards} shards)"
                    );
                }
            }
        }
    }

    #[test]
    fn collect_top_orders_by_score_then_id() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let top = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(top, vec![(UserId(1), 2), (UserId(2), 1)]);
        let top1 = index.top_similar(&d, UserId(0), 1, &mut scratch);
        assert_eq!(top1, vec![(UserId(1), 2)]);
    }

    #[test]
    fn zero_network_size_yields_empty_networks() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        assert!(index.top_similar(&d, UserId(0), 0, &mut scratch).is_empty());
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_sweeps() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let first = index.top_similar(&d, UserId(0), 10, &mut scratch);
        let isolated = index.top_similar(&d, UserId(3), 10, &mut scratch);
        assert!(isolated.is_empty());
        let again = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    fn apply_delta_patches_postings_and_reports_dirty() {
        let mut d = dataset();
        for shards in [1, 2, 4] {
            let mut index = ActionIndex::build_with_shards(&d, shards);
            // User 3 adds an action user 2 already has, plus a brand-new key.
            let delta = [act(9, 9), act(50, 50)];
            let outcome = index.apply_delta(UserId(3), &delta);
            d.profile_mut(UserId(3)).extend(delta);
            assert_eq!(outcome.changed, vec![UserId(3)]);
            // u2's score against u3 grew via act(9,9); act(50,50) is hers
            // alone and affects nobody else.
            assert_eq!(outcome.pairs, vec![(UserId(2), UserId(3))]);
            assert_eq!(outcome.dirty_users(), vec![UserId(2), UserId(3)]);
            assert_eq!(index.taggers_of(&act(9, 9)), vec![2, 3]);
            assert_eq!(index.taggers_of(&act(50, 50)), vec![3]);
            assert_matches_fresh_build(&index, &d);
            // Reset for the next shard count.
            d = dataset();
        }
    }

    #[test]
    fn duplicate_deltas_are_noops_with_empty_dirty_set() {
        let d = dataset();
        let mut index = ActionIndex::build(&d);
        // Every action already in the profile: nothing changes.
        let outcome = index.apply_delta(UserId(0), &[act(1, 1), act(2, 2)]);
        assert!(outcome.is_empty());
        assert!(outcome.dirty_users().is_empty());
        assert_matches_fresh_build(&index, &d);
        assert!(index.apply_delta(UserId(1), &[]).is_empty());
    }

    #[test]
    fn batched_deltas_touch_multiple_users_and_shards() {
        let mut d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 3);
        let d0 = [act(9, 9)];
        let d3 = [act(1, 1), act(200, 5)];
        let outcome = index.apply_deltas(vec![(UserId(0), &d0[..]), (UserId(3), &d3[..])]);
        d.profile_mut(UserId(0)).extend(d0);
        d.profile_mut(UserId(3)).extend(d3);
        // act(9,9) gains u0 (affecting u2); act(1,1) gains u3 (affecting
        // u0 and u1); act(200,5) is brand new and affects nobody. The
        // (u0, u3) pair is omitted: u0 is itself a changing user.
        assert_eq!(outcome.changed, vec![UserId(0), UserId(3)]);
        assert_eq!(
            outcome.pairs,
            vec![(UserId(1), UserId(3)), (UserId(2), UserId(0))]
        );
        assert_eq!(
            outcome.dirty_users(),
            vec![UserId(0), UserId(1), UserId(2), UserId(3)]
        );
        assert_matches_fresh_build(&index, &d);
    }

    #[test]
    fn remove_user_strips_postings_and_drops_empty_keys() {
        let mut d = dataset();
        for shards in [1, 2, 5] {
            let mut index = ActionIndex::build_with_shards(&d, shards);
            let old = d.profile(UserId(2)).clone();
            let dirty = index.remove_user(UserId(2), &old);
            *d.profile_mut(UserId(2)) = Profile::new();
            // u2 shared act(3,3) with u0; act(9,9) was hers alone.
            assert_eq!(dirty, vec![UserId(0), UserId(2)]);
            assert_eq!(index.taggers_of(&act(3, 3)), vec![0]);
            assert!(index.taggers_of(&act(9, 9)).is_empty());
            assert_matches_fresh_build(&index, &d);
            d = dataset();
        }
    }

    #[test]
    fn remove_then_re_add_round_trips() {
        let d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 2);
        let profile = d.profile(UserId(0)).clone();
        let actions: Vec<TaggingAction> = profile.iter().copied().collect();
        index.remove_user(UserId(0), &profile);
        let outcome = index.apply_delta(UserId(0), &actions);
        assert_eq!(outcome.changed, vec![UserId(0)]);
        assert!(outcome.dirty_users().contains(&UserId(0)));
        assert_matches_fresh_build(&index, &d);
    }

    #[test]
    fn very_popular_gained_keys_use_resweep_instead_of_pairs() {
        // 130 users already share act(1,1); 65 more add it in one batch, so
        // affected members × gainers = 130 × 65 far exceeds
        // PAIR_EMISSION_CAP and pair emission must give way to a resweep
        // report.
        let profiles: Vec<Profile> = (0..195u32)
            .map(|i| {
                let mut actions = vec![act(200 + i, 1)];
                if i < 130 {
                    actions.push(act(1, 1));
                }
                Profile::from_actions(actions)
            })
            .collect();
        let mut d = Dataset::new(profiles, 400, 10);
        let mut index = ActionIndex::build(&d);
        let mut ideal = crate::baseline::IdealNetworks::compute_with_threads(&d, 5, 1);

        let deltas: Vec<(UserId, Vec<TaggingAction>)> =
            (130..195).map(|i| (UserId(i), vec![act(1, 1)])).collect();
        let outcome = index.apply_deltas(deltas.iter().map(|(u, a)| (*u, a.as_slice())));
        for (u, a) in &deltas {
            d.profile_mut(*u).extend(a.iter().copied());
        }
        assert_eq!(outcome.changed.len(), 65);
        assert!(
            outcome.pairs.is_empty(),
            "the capped key must not emit pairs"
        );
        assert_eq!(outcome.resweep.len(), 195);
        assert_matches_fresh_build(&index, &d);

        // The resweep path still reproduces a from-scratch compute.
        ideal.apply_delta_outcome(&d, &index, &outcome, 1);
        let oracle = crate::baseline::IdealNetworks::compute_with_threads(&d, 5, 1);
        for user in d.users() {
            assert_eq!(ideal.network_of(user), oracle.network_of(user), "{user}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn delta_for_out_of_range_user_is_rejected() {
        let d = dataset();
        let mut index = ActionIndex::build(&d);
        let _ = index.apply_delta(UserId(99), &[act(1, 1)]);
    }

    #[test]
    fn empty_dataset_builds_an_empty_index() {
        let d = Dataset::default();
        let mut index = ActionIndex::build(&d);
        assert_eq!(index.distinct_actions(), 0);
        assert_eq!(index.num_shards(), 1);
        assert!(index.taggers_of(&act(1, 1)).is_empty());
        assert!(index.apply_deltas(std::iter::empty()).is_empty());
    }

    #[test]
    fn dictionary_tail_ids_route_into_the_last_shard() {
        let d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 3);
        let frozen = index.dictionary().frozen_len();
        // act(0,0) sorts before every frozen key: it must become a tail id
        // and still land in a shard.
        let outcome = index.apply_delta(UserId(1), &[act(0, 0)]);
        assert_eq!(outcome.changed, vec![UserId(1)]);
        assert_eq!(index.dictionary().frozen_len(), frozen);
        assert_eq!(index.dictionary().len(), frozen + 1);
        assert_eq!(index.taggers_of(&act(0, 0)), vec![1]);
        let mut d2 = d.clone();
        d2.profile_mut(UserId(1)).insert(act(0, 0));
        // Posting-level equality with a fresh build still holds even though
        // the id assignment differs (tail vs frozen).
        for (_, profile) in d2.iter() {
            for action in profile.iter() {
                assert_eq!(
                    index.taggers_of(action),
                    ActionIndex::build(&d2).taggers_of(action),
                    "{action}"
                );
            }
        }
        assert_eq!(
            index.distinct_actions(),
            ActionIndex::build(&d2).distinct_actions()
        );
    }

    #[test]
    fn resolve_top_similar_matches_the_dense_sweep() {
        let d = dataset();
        for shards in [1, 2, 4] {
            let index = ActionIndex::build_with_shards(&d, shards);
            let mut scratch = SimilarityScratch::new(d.num_users());
            for user in d.users() {
                for k in [0, 1, 3, 10] {
                    let swept = index.top_similar(&d, user, k, &mut scratch);
                    let (resolved, probe) = index.resolve_top_similar(&d, user, k);
                    assert_eq!(resolved, swept, "user {user}, k {k}, {shards} shards");
                    if k > 0 && !swept.is_empty() {
                        assert!(probe.positions_scanned > 0);
                    }
                }
            }
        }
    }

    #[test]
    fn resolve_reflects_deltas_and_departures() {
        let mut d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 2);
        let delta = [act(9, 9), act(3, 3)];
        index.apply_delta(UserId(1), &delta);
        d.profile_mut(UserId(1)).extend(delta);
        let (resolved, _) = index.resolve_top_similar(&d, UserId(1), 10);
        let mut scratch = SimilarityScratch::new(d.num_users());
        assert_eq!(resolved, index.top_similar(&d, UserId(1), 10, &mut scratch));

        let old = d.profile(UserId(2)).clone();
        index.remove_user(UserId(2), &old);
        *d.profile_mut(UserId(2)) = Profile::new();
        for user in d.users() {
            let (resolved, _) = index.resolve_top_similar(&d, user, 10);
            assert_eq!(
                resolved,
                index.top_similar(&d, user, 10, &mut scratch),
                "{user}"
            );
            assert!(!resolved.iter().any(|&(peer, _)| peer == UserId(2)));
        }
    }

    #[test]
    fn packed_serving_matches_decoded_serving() {
        let d = dataset();
        for shards in [1, 2, 4] {
            let index = ActionIndex::build_with_shards(&d, shards);
            let mut scratch = SimilarityScratch::new(d.num_users());
            for user in d.users() {
                let packed = PackedProfile::pack(d.profile(user));
                for k in [0, 1, 3, 10] {
                    let decoded = index.top_similar(&d, user, k, &mut scratch);
                    let served = index.top_similar_packed(&packed, user, k, &mut scratch);
                    assert_eq!(served, decoded, "user {user}, k {k}, {shards} shards");
                    let (resolved, probe) = index.resolve_top_similar(&d, user, k);
                    let (resolved_packed, probe_packed) =
                        index.resolve_top_similar_packed(&packed, user, k);
                    assert_eq!(resolved_packed, resolved, "user {user}, k {k}");
                    assert_eq!(probe_packed, probe, "user {user}, k {k}");
                }
            }
        }
    }

    #[test]
    fn wide_directory_fallback_preserves_random_access() {
        // One shard, 70 distinct actions, each tagged by 1500 users: any
        // 64-slot directory window spans far more than u16::MAX blob bytes,
        // forcing the per-shard Wide fallback. Random access, the counting
        // sweep and on-demand resolution must be unaffected.
        let num_users = 1500u32;
        let profiles: Vec<Profile> = (0..num_users)
            .map(|_| Profile::from_actions((0..70u32).map(|i| act(i, 1))))
            .collect();
        let d = Dataset::new(profiles, 100, 10);
        let index = ActionIndex::build_with_shards(&d, 1);
        let all: Vec<u32> = (0..num_users).collect();
        for i in (0..70u32).step_by(13) {
            assert_eq!(index.taggers_of(&act(i, 1)), all, "action {i}");
        }
        let memory = index.memory();
        // The wide fallback pays 4 bytes per group, i.e. 0.5 per slot.
        assert_eq!(
            memory.directory_bytes,
            70usize.div_ceil(IDS_PER_GROUP) * 4,
            "expected the absolute-u32 fallback directory"
        );
        let mut scratch = SimilarityScratch::new(d.num_users());
        let swept = index.top_similar(&d, UserId(0), 5, &mut scratch);
        let (resolved, _) = index.resolve_top_similar(&d, UserId(0), 5);
        assert_eq!(resolved, swept);
        assert_eq!(swept[0].1, 70, "full overlap with every peer");
    }

    #[test]
    fn compact_directory_beats_absolute_u32_layout() {
        // Paper-shaped sparse postings keep every 64-slot window narrow, so
        // the anchored u16 directory must engage and undercut the 4-bytes-
        // per-group absolute layout.
        let profiles: Vec<Profile> = (0..300u32)
            .map(|u| Profile::from_actions((0..5u32).map(|i| act(u * 5 + i, 1))))
            .collect();
        let d = Dataset::new(profiles, 2000, 10);
        let index = ActionIndex::build_with_shards(&d, 1);
        let memory = index.memory();
        let groups = 1500usize.div_ceil(IDS_PER_GROUP);
        assert!(
            memory.directory_bytes < groups * 4,
            "compact directory ({}) must undercut the absolute-u32 layout ({})",
            memory.directory_bytes,
            groups * 4
        );
    }

    #[test]
    fn rebuild_checksums_are_identical_across_shard_layouts() {
        // The posting content of the index is a pure function of the
        // dataset: any shard layout must produce byte-identical posting
        // runs per action (the shard split moves only blob boundaries).
        let d = dataset();
        let actions: Vec<TaggingAction> = d.iter().flat_map(|(_, p)| p.iter().copied()).collect();
        let reference: Vec<Vec<u32>> = {
            let index = ActionIndex::build_with_shards(&d, 1);
            actions.iter().map(|a| index.taggers_of(a)).collect()
        };
        for shards in [2, 3, 4, 6] {
            let index = ActionIndex::build_with_shards(&d, shards);
            for (action, taggers) in actions.iter().zip(&reference) {
                assert_eq!(
                    index.taggers_of(action),
                    *taggers,
                    "{action}, {shards} shards"
                );
            }
        }
    }

    #[test]
    fn memory_report_accounts_all_columns() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let memory = index.memory();
        assert_eq!(memory.distinct_actions, 5);
        assert_eq!(memory.postings, 8);
        assert_eq!(
            memory.total_bytes,
            memory.dictionary_bytes + memory.directory_bytes + memory.postings_bytes
        );
        assert_eq!(memory.csr_equivalent_bytes, 5 * 12 + 8 * 4);
        assert!(memory.total_bytes > 0);
    }
}
