//! The similarity engine: counting-based, index-backed computation of the
//! paper's profile-similarity score at population scale — with incremental
//! maintenance under profile dynamics.
//!
//! `Score_{u}(v) = |Profile(u) ∩ Profile(v)|` is evaluated everywhere in the
//! P3Q evaluation: once per candidate pair when building the ideal personal
//! networks (Section 3.2.1) and once per offer on every gossip exchange.
//! The naive route — a linear merge of the two sorted profiles per pair —
//! costs `O(|P_u| + |P_v|)` even when the intersection is empty, which is
//! what capped trace sizes before this module existed.
//!
//! [`ActionIndex`] inverts the dataset once: for every distinct tagging
//! action `(item, tag)` it stores the posting list of users whose profile
//! contains it. Scoring one user against *everyone* then becomes a counting
//! sweep: walk her actions, and for each action bump a dense per-user
//! accumulator for every other user on that posting list. The total work is
//! proportional to the number of *actually shared* actions — the
//! intersection mass — instead of the sum of profile lengths over all
//! candidate pairs.
//!
//! ## Sharding and the delta-apply cost model
//!
//! The index is split into key-range **shards** (contiguous runs of sorted
//! `(item, tag)` keys, each a small CSR block). Profile dynamics
//! (Section 3.4.1: users keep tagging) no longer force a rebuild:
//!
//! * [`ActionIndex::apply_deltas`] patches only the shards containing the
//!   new actions' keys. A batch of `D` new actions costs
//!   `O(D log D + Σ |touched shard|)` — untouched shards are never read,
//!   so a small batch touches a small fraction of the index instead of
//!   paying the `O(A log A)` sort of a full rebuild over all `A` actions.
//! * [`ActionIndex::remove_user`] handles churn (departures) the same way:
//!   only the shards holding the departed profile's keys are compacted, and
//!   the **dirty set** (everyone who shared an action with the departed
//!   user) comes back for re-scoring through
//!   [`crate::baseline::IdealNetworks::recompute_dirty`].
//! * [`ActionIndex::apply_deltas`] goes further and returns a
//!   [`DeltaOutcome`]: the changing users plus the exact `(affected,
//!   changed)` pairs whose score grew. Because additions only *increase*
//!   scores, [`crate::baseline::IdealNetworks::apply_change_batch`] can
//!   patch a lightly affected user's network from a few pair merges and
//!   reserve full counting sweeps for the changing users — provably
//!   matching a from-scratch
//!   [`crate::baseline::IdealNetworks::compute`].
//!
//! The per-user loop is embarrassingly parallel and runs through
//! [`p3q_sim::parallel_map_chunks`], which guarantees output identical for
//! every worker-thread count (set `P3Q_THREADS=1` to pin).

use p3q_trace::{Dataset, Profile, TaggingAction, UserId};

/// Distinct keys a shard aims to hold when the shard count is derived from
/// the dataset size ([`ActionIndex::build`]).
const TARGET_KEYS_PER_SHARD: usize = 1024;

/// Upper bound on the number of shards, so shard routing stays cheap even
/// for very large traces.
const MAX_SHARDS: usize = 1024;

/// Per-key bound on `|affected members| × |gainers|` pair emission in
/// [`ActionIndex::apply_deltas`] (affected members = posting-list members
/// that are not themselves gainers of the key). A very popular gained
/// action would emit a quadratic number of `(member, gainer)` pairs;
/// beyond this bound its posting members go to [`DeltaOutcome::resweep`]
/// (full re-score) instead, which costs only the posting length.
const PAIR_EMISSION_CAP: usize = 4096;

/// Scratch space for one scoring sweep: a dense per-user counter plus the
/// list of touched slots so that clearing costs `O(touched)`, not
/// `O(num_users)`.
#[derive(Debug, Clone)]
pub struct SimilarityScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl SimilarityScratch {
    /// Creates scratch space for a population of `num_users`.
    pub fn new(num_users: usize) -> Self {
        Self {
            counts: vec![0; num_users],
            touched: Vec::new(),
        }
    }
}

/// The exact effect of one delta batch on pairwise similarity scores,
/// returned by [`ActionIndex::apply_deltas`].
///
/// Additions can only increase scores, so this is a complete description of
/// what moved: a changing user's score may have grown against anyone, while
/// a non-changing user's score grew only against the partners listed for
/// her in `pairs` — which is what lets
/// [`crate::baseline::IdealNetworks::apply_change_batch`] patch most
/// networks from a few exact pair merges instead of full sweeps.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// Users that genuinely gained at least one new action, sorted by id.
    pub changed: Vec<UserId>,
    /// `(affected, changed)` pairs whose similarity score increased, sorted
    /// and deduplicated. Pairs whose affected side is itself a changing
    /// user are omitted — changing users are fully re-swept anyway.
    pub pairs: Vec<(UserId, UserId)>,
    /// Users affected through a *very popular* gained action (posting list
    /// × gainers beyond [`PAIR_EMISSION_CAP`]), reported for full
    /// re-scoring instead of per-pair emission — this bounds the outcome's
    /// size by the touched posting mass rather than its square. Sorted and
    /// deduplicated.
    pub resweep: Vec<UserId>,
}

impl DeltaOutcome {
    /// Every user whose similarity score against someone changed (the
    /// changing users plus every affected partner), sorted by id. These are
    /// exactly the users whose ideal personal network may differ from
    /// before the batch.
    pub fn dirty_users(&self) -> Vec<UserId> {
        let mut dirty: Vec<UserId> = self
            .changed
            .iter()
            .copied()
            .chain(self.resweep.iter().copied())
            .chain(self.pairs.iter().map(|&(affected, _)| affected))
            .collect();
        dirty.sort_unstable();
        dirty.dedup();
        dirty
    }

    /// Returns `true` if the batch changed nothing (every delta action was
    /// already present).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

/// One key-range shard: a CSR block over a contiguous run of sorted keys.
/// `keys` are the distinct `(item, tag)` actions of the range,
/// `offsets[i]..offsets[i + 1]` delimits the posting list of `keys[i]`
/// inside `users`, and every posting list is in ascending user order.
#[derive(Debug, Clone, Default)]
struct IndexShard {
    keys: Vec<u64>,
    offsets: Vec<u32>,
    users: Vec<u32>,
}

impl IndexShard {
    fn posting(&self, pos: usize) -> &[u32] {
        &self.users[self.offsets[pos] as usize..self.offsets[pos + 1] as usize]
    }
}

/// A counting inverted index over every distinct tagging action of a
/// dataset, sharded by key range for incremental maintenance.
///
/// Building the index costs one sort of the (action, user) pairs —
/// `O(A log A)` for `A` total actions — after which profile dynamics are
/// absorbed by [`Self::apply_deltas`] / [`Self::remove_user`] at the cost
/// of patching only the affected shards (see the module docs for the cost
/// model).
#[derive(Debug, Clone)]
pub struct ActionIndex {
    shards: Vec<IndexShard>,
    /// `shard_starts[i]` is the smallest key routed to shard `i`;
    /// `shard_starts[0]` is always 0 so every key has a home shard. Routing
    /// is stable under inserts: a new key lands in the shard whose range
    /// covers it, never creating or re-balancing shards.
    shard_starts: Vec<u64>,
    num_users: usize,
}

fn action_key(action: &TaggingAction) -> u64 {
    (u64::from(action.item.0) << 32) | u64::from(action.tag.0)
}

/// Offsets are u32 to halve the index footprint; fail loudly rather than
/// silently wrapping if a shard ever exceeds 2^32 postings.
fn offset_of(len: usize) -> u32 {
    u32::try_from(len).expect("ActionIndex shards support at most 2^32 - 1 postings")
}

impl ActionIndex {
    /// Builds the index over every profile of the dataset, choosing the
    /// shard count from the number of distinct actions (about
    /// [`TARGET_KEYS_PER_SHARD`] keys per shard, at most [`MAX_SHARDS`]).
    pub fn build(dataset: &Dataset) -> Self {
        Self::build_with_shards(dataset, 0)
    }

    /// [`Self::build`] with an explicit shard count (`0` derives it from the
    /// dataset size). Exposed for tests and tuning; the shard count changes
    /// only the incremental-update granularity, never any query result.
    pub fn build_with_shards(dataset: &Dataset, num_shards: usize) -> Self {
        let total: usize = dataset.iter().map(|(_, p)| p.len()).sum();
        let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(total);
        for (user, profile) in dataset.iter() {
            for action in profile.iter() {
                pairs.push((action_key(action), user.0));
            }
        }
        // Sorting by (key, user) groups postings and keeps each list in
        // ascending user order, independent of iteration details.
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut key_offsets: Vec<usize> = Vec::new();
        let mut users = Vec::with_capacity(pairs.len());
        for (key, user) in pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
                key_offsets.push(users.len());
            }
            users.push(user);
        }
        key_offsets.push(users.len());

        let requested = if num_shards > 0 {
            num_shards
        } else {
            keys.len()
                .div_ceil(TARGET_KEYS_PER_SHARD)
                .clamp(1, MAX_SHARDS)
        };
        let keys_per_shard = keys.len().div_ceil(requested).max(1);
        // Never create empty trailing shards (a request larger than the key
        // count collapses to one shard per key).
        let num_shards = keys.len().div_ceil(keys_per_shard).max(1);

        let mut shards = Vec::with_capacity(num_shards);
        let mut shard_starts = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let lo = (s * keys_per_shard).min(keys.len());
            let hi = ((s + 1) * keys_per_shard).min(keys.len());
            let user_lo = key_offsets[lo];
            shards.push(IndexShard {
                keys: keys[lo..hi].to_vec(),
                // Rebase in usize before narrowing so the per-shard u32
                // limit applies to shard-local offsets, not global ones.
                offsets: key_offsets[lo..=hi]
                    .iter()
                    .map(|&o| offset_of(o - user_lo))
                    .collect(),
                users: users[user_lo..key_offsets[hi]].to_vec(),
            });
            // The first shard's range is open below so that keys smaller
            // than any indexed one still route somewhere.
            shard_starts.push(if s == 0 { 0 } else { keys[lo] });
        }
        Self {
            shards,
            shard_starts,
            num_users: dataset.num_users(),
        }
    }

    /// Number of users covered by the index.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of distinct tagging actions in the index.
    pub fn distinct_actions(&self) -> usize {
        self.shards.iter().map(|s| s.keys.len()).sum()
    }

    /// Number of key-range shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a key routes to.
    fn shard_of(&self, key: u64) -> usize {
        self.shard_starts.partition_point(|&s| s <= key) - 1
    }

    /// The users whose profile contains `action`, in ascending order.
    pub fn taggers_of(&self, action: &TaggingAction) -> &[u32] {
        let key = action_key(action);
        let shard = &self.shards[self.shard_of(key)];
        match shard.keys.binary_search(&key) {
            Ok(pos) => shard.posting(pos),
            Err(_) => &[],
        }
    }

    /// Patches the index with one user's newly added tagging actions and
    /// returns the effects (see [`Self::apply_deltas`]).
    pub fn apply_delta(&mut self, user: UserId, new_actions: &[TaggingAction]) -> DeltaOutcome {
        self.apply_deltas(std::iter::once((user, new_actions)))
    }

    /// Patches the index with a batch of profile additions: for every
    /// `(user, new_actions)` pair the user is inserted into the posting
    /// lists of her new actions. Actions the user already has in the index
    /// are skipped (set semantics, matching [`Profile::extend`]), so the
    /// deltas may safely repeat existing actions.
    ///
    /// Only the shards whose key range contains a delta are touched; each
    /// is patched by a single linear merge.
    ///
    /// Returns a [`DeltaOutcome`] describing exactly which pairwise scores
    /// changed: the changing users themselves (every one of their scores
    /// may have moved) and, for everyone else, the `(affected, changed)`
    /// pairs whose overlap grew. Since additions can only *increase*
    /// scores, that is all the information needed to update the ideal
    /// networks exactly — see
    /// [`crate::baseline::IdealNetworks::apply_change_batch`].
    ///
    /// # Panics
    /// Panics if a delta names a user outside the indexed population.
    pub fn apply_deltas<'a, I>(&mut self, deltas: I) -> DeltaOutcome
    where
        I: IntoIterator<Item = (UserId, &'a [TaggingAction])>,
    {
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for (user, actions) in deltas {
            assert!(
                user.index() < self.num_users,
                "delta for unknown user {user}"
            );
            for action in actions {
                pairs.push((action_key(action), user.0));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        if pairs.is_empty() {
            return DeltaOutcome::default();
        }

        let mut changed: Vec<u32> = Vec::new();
        let mut score_pairs: Vec<(u32, u32)> = Vec::new();
        let mut resweep: Vec<u32> = Vec::new();
        let mut start = 0usize;
        for sidx in 0..self.shards.len() {
            if start >= pairs.len() {
                break;
            }
            let end = match self.shard_starts.get(sidx + 1) {
                Some(&hi) => start + pairs[start..].partition_point(|&(k, _)| k < hi),
                None => pairs.len(),
            };
            if end > start {
                merge_into_shard(
                    &mut self.shards[sidx],
                    &pairs[start..end],
                    &mut changed,
                    &mut score_pairs,
                    &mut resweep,
                );
            }
            start = end;
        }
        changed.sort_unstable();
        changed.dedup();
        // The per-key emission already skips members that gained the same
        // key; drop the pairs whose affected side changed via *another* key
        // too — changing users are fully re-swept downstream regardless.
        score_pairs.retain(|&(affected, _)| changed.binary_search(&affected).is_err());
        score_pairs.sort_unstable();
        score_pairs.dedup();
        resweep.sort_unstable();
        resweep.dedup();
        DeltaOutcome {
            changed: changed.into_iter().map(UserId).collect(),
            pairs: score_pairs
                .into_iter()
                .map(|(v, u)| (UserId(v), UserId(u)))
                .collect(),
            resweep: resweep.into_iter().map(UserId).collect(),
        }
    }

    /// Removes a departed user from the index (churn). `profile` must be the
    /// profile the index currently holds for her — her posting entries are
    /// deleted from exactly those actions' lists, and keys whose posting
    /// list empties are dropped (a from-scratch build would not contain
    /// them). Only the shards covering her keys are compacted.
    ///
    /// Returns the dirty users: everyone who shared an action with her (her
    /// score against each of them drops), plus the user herself.
    pub fn remove_user(&mut self, user: UserId, profile: &Profile) -> Vec<UserId> {
        // Profiles are item-major sorted, which `action_key` preserves, so
        // the keys arrive sorted and split into shard runs in one pass.
        let keys: Vec<u64> = profile.iter().map(action_key).collect();
        if keys.is_empty() {
            return Vec::new();
        }
        let mut dirty: Vec<u32> = Vec::new();
        let mut start = 0usize;
        for sidx in 0..self.shards.len() {
            if start >= keys.len() {
                break;
            }
            let end = match self.shard_starts.get(sidx + 1) {
                Some(&hi) => start + keys[start..].partition_point(|&k| k < hi),
                None => keys.len(),
            };
            if end > start {
                strip_user_from_shard(
                    &mut self.shards[sidx],
                    &keys[start..end],
                    user.0,
                    &mut dirty,
                );
            }
            start = end;
        }
        finish_dirty(dirty)
    }

    /// Scores `profile` against every indexed user in one counting sweep.
    ///
    /// After the call, `scratch.counts[v]` holds `|profile ∩ Profile(v)|`
    /// for every user `v` in `scratch.touched` (slots outside `touched` are
    /// zero). `exclude` removes one user (the profile's owner) from the
    /// result. The caller must drain the scratch through
    /// [`Self::collect_top`] or clear it via the next `accumulate` call —
    /// the sweep starts by resetting only previously touched slots.
    pub fn accumulate(&self, profile: &Profile, exclude: UserId, scratch: &mut SimilarityScratch) {
        debug_assert_eq!(scratch.counts.len(), self.num_users);
        for &slot in &scratch.touched {
            scratch.counts[slot as usize] = 0;
        }
        scratch.touched.clear();

        // The profile's actions, the shard ranges and each shard's keys are
        // all sorted, so the walk advances a shard cursor monotonically and
        // each in-shard lookup narrows the remaining search window instead
        // of re-scanning the whole key space.
        let mut shard_idx = 0usize;
        let mut lo = 0usize;
        for action in profile.iter() {
            let key = action_key(action);
            while shard_idx + 1 < self.shards.len() && self.shard_starts[shard_idx + 1] <= key {
                shard_idx += 1;
                lo = 0;
            }
            let shard = &self.shards[shard_idx];
            match shard.keys[lo..].binary_search(&key) {
                Ok(rel) => {
                    let pos = lo + rel;
                    lo = pos + 1;
                    for &user in shard.posting(pos) {
                        if user == exclude.0 {
                            continue;
                        }
                        let slot = &mut scratch.counts[user as usize];
                        if *slot == 0 {
                            scratch.touched.push(user);
                        }
                        *slot += 1;
                    }
                }
                Err(rel) => lo += rel,
            }
        }
    }

    /// Extracts the top-`network_size` scored users from a finished sweep:
    /// `(user, score)` pairs with positive scores, in descending score order
    /// with ties broken by ascending user id — exactly the ideal
    /// personal-network ordering of [`crate::baseline::IdealNetworks`].
    pub fn collect_top(
        &self,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        if network_size == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(UserId, u64)> = scratch
            .touched
            .iter()
            .map(|&user| (UserId(user), u64::from(scratch.counts[user as usize])))
            .collect();
        let by_rank = |a: &(UserId, u64), b: &(UserId, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if scored.len() > network_size {
            // Partial selection: only the retained prefix needs a full sort.
            scored.select_nth_unstable_by(network_size - 1, by_rank);
            scored.truncate(network_size);
        }
        scored.sort_unstable_by(by_rank);
        scored
    }

    /// Convenience wrapper: the top-`network_size` most similar users to
    /// `user`, using (and resetting) `scratch`.
    pub fn top_similar(
        &self,
        dataset: &Dataset,
        user: UserId,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        self.accumulate(dataset.profile(user), user, scratch);
        self.collect_top(network_size, scratch)
    }
}

/// Sorts, dedups and wraps a raw dirty-user accumulation.
fn finish_dirty(mut dirty: Vec<u32>) -> Vec<UserId> {
    dirty.sort_unstable();
    dirty.dedup();
    dirty.into_iter().map(UserId).collect()
}

/// Merges sorted, deduplicated delta `(key, user)` pairs into one shard with
/// a single linear pass. Every key that genuinely gains a tagger reports its
/// gainers into `changed` and the `(posting member, gainer)` pairs whose
/// score grew into `score_pairs` — unless the key is so popular that the
/// pair product exceeds [`PAIR_EMISSION_CAP`], in which case its posting
/// members go to `resweep` instead.
fn merge_into_shard(
    shard: &mut IndexShard,
    pairs: &[(u64, u32)],
    changed: &mut Vec<u32>,
    score_pairs: &mut Vec<(u32, u32)>,
    resweep: &mut Vec<u32>,
) {
    let mut keys = Vec::with_capacity(shard.keys.len() + pairs.len());
    let mut offsets = Vec::with_capacity(shard.keys.len() + pairs.len() + 1);
    let mut users = Vec::with_capacity(shard.users.len() + pairs.len());
    offsets.push(0u32);
    let mut gainers: Vec<u32> = Vec::new();

    let (mut i, mut j) = (0usize, 0usize);
    while i < shard.keys.len() || j < pairs.len() {
        let key = match (shard.keys.get(i), pairs.get(j)) {
            (Some(&ok), Some(&(dk, _))) => ok.min(dk),
            (Some(&ok), None) => ok,
            (None, Some(&(dk, _))) => dk,
            (None, None) => unreachable!("loop condition guarantees a side"),
        };
        let key_start = users.len();
        let old = if shard.keys.get(i) == Some(&key) {
            let range = shard.offsets[i] as usize..shard.offsets[i + 1] as usize;
            i += 1;
            range
        } else {
            0..0
        };
        let delta_lo = j;
        while j < pairs.len() && pairs[j].0 == key {
            j += 1;
        }
        let delta = &pairs[delta_lo..j];

        // Two-pointer union of the old posting list and the delta users;
        // a delta user already present is a duplicate action and adds
        // nothing.
        gainers.clear();
        let (mut a, mut b) = (old.start, 0usize);
        while a < old.end || b < delta.len() {
            match (
                (a < old.end).then(|| shard.users[a]),
                (b < delta.len()).then(|| delta[b].1),
            ) {
                (Some(x), Some(y)) if x < y => {
                    users.push(x);
                    a += 1;
                }
                (Some(x), Some(y)) if x > y => {
                    users.push(y);
                    b += 1;
                    gainers.push(y);
                }
                (Some(x), Some(_)) => {
                    users.push(x);
                    a += 1;
                    b += 1;
                }
                (Some(x), None) => {
                    users.push(x);
                    a += 1;
                }
                (None, Some(y)) => {
                    users.push(y);
                    b += 1;
                    gainers.push(y);
                }
                (None, None) => unreachable!("loop condition guarantees a side"),
            }
        }
        keys.push(key);
        offsets.push(offset_of(users.len()));
        if !gainers.is_empty() {
            changed.extend_from_slice(&gainers);
            // Everyone on the final posting list now overlaps each gainer
            // on this key; their pairwise scores grew by one. Pairs whose
            // affected side is itself a gainer are skipped — gainers get a
            // full sweep downstream anyway — so they neither bloat the
            // outcome nor count toward the emission cap.
            let posting = &users[key_start..];
            let affected_members = posting.len() - gainers.len();
            if affected_members.saturating_mul(gainers.len()) > PAIR_EMISSION_CAP {
                resweep.extend_from_slice(posting);
            } else {
                for &member in posting {
                    // `gainers` is in ascending user order (it follows the
                    // sorted delta pairs), so membership is a binary search.
                    if gainers.binary_search(&member).is_ok() {
                        continue;
                    }
                    for &gainer in &gainers {
                        score_pairs.push((member, gainer));
                    }
                }
            }
        }
    }
    shard.keys = keys;
    shard.offsets = offsets;
    shard.users = users;
}

/// Removes `user` from the posting lists of `keys` (sorted) inside one
/// shard, dropping keys whose posting list empties. Every posting list the
/// user was actually on contributes its pre-removal members to `dirty`.
fn strip_user_from_shard(shard: &mut IndexShard, keys: &[u64], user: u32, dirty: &mut Vec<u32>) {
    let mut new_keys = Vec::with_capacity(shard.keys.len());
    let mut new_offsets = Vec::with_capacity(shard.offsets.len());
    let mut new_users = Vec::with_capacity(shard.users.len());
    new_offsets.push(0u32);

    let mut k = 0usize;
    for (i, &key) in shard.keys.iter().enumerate() {
        while k < keys.len() && keys[k] < key {
            k += 1;
        }
        let posting = shard.posting(i);
        let targeted = keys.get(k) == Some(&key);
        if targeted && posting.binary_search(&user).is_ok() {
            dirty.extend_from_slice(posting);
            if posting.len() > 1 {
                new_keys.push(key);
                new_users.extend(posting.iter().copied().filter(|&u| u != user));
                new_offsets.push(offset_of(new_users.len()));
            }
            // A posting list of just the departed user drops the key.
        } else {
            new_keys.push(key);
            new_users.extend_from_slice(posting);
            new_offsets.push(offset_of(new_users.len()));
        }
    }
    shard.keys = new_keys;
    shard.offsets = new_offsets;
    shard.users = new_users;
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3q_trace::{ItemId, TagId};

    fn act(item: u32, tag: u32) -> TaggingAction {
        TaggingAction::new(ItemId(item), TagId(tag))
    }

    fn dataset() -> Dataset {
        let p0 = Profile::from_actions(vec![act(1, 1), act(2, 2), act(3, 3)]);
        let p1 = Profile::from_actions(vec![act(1, 1), act(2, 2)]);
        let p2 = Profile::from_actions(vec![act(3, 3), act(9, 9)]);
        let p3 = Profile::from_actions(vec![act(100, 100)]);
        Dataset::new(vec![p0, p1, p2, p3], 200, 200)
    }

    /// Semantic equality with a freshly built index, independent of shard
    /// layout: same distinct actions and same posting list per action.
    fn assert_matches_fresh_build(index: &ActionIndex, dataset: &Dataset) {
        let fresh = ActionIndex::build(dataset);
        assert_eq!(index.distinct_actions(), fresh.distinct_actions());
        for (_, profile) in dataset.iter() {
            for action in profile.iter() {
                assert_eq!(
                    index.taggers_of(action),
                    fresh.taggers_of(action),
                    "posting list diverged for {action}"
                );
            }
        }
    }

    #[test]
    fn taggers_lists_are_sorted_and_complete() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        assert_eq!(index.num_users(), 4);
        assert_eq!(index.distinct_actions(), 5);
        assert_eq!(index.taggers_of(&act(1, 1)), &[0, 1]);
        assert_eq!(index.taggers_of(&act(3, 3)), &[0, 2]);
        assert_eq!(index.taggers_of(&act(100, 100)), &[3]);
        assert!(index.taggers_of(&act(42, 42)).is_empty());
    }

    #[test]
    fn sharded_build_answers_identically() {
        let d = dataset();
        for shards in 1..=6 {
            let index = ActionIndex::build_with_shards(&d, shards);
            assert!((1..=shards).contains(&index.num_shards()));
            assert_eq!(index.distinct_actions(), 5);
            assert_eq!(index.taggers_of(&act(1, 1)), &[0, 1]);
            assert_eq!(index.taggers_of(&act(100, 100)), &[3]);
            assert!(index.taggers_of(&act(0, 0)).is_empty());
            assert!(index.taggers_of(&act(150, 150)).is_empty());
        }
    }

    #[test]
    fn counting_sweep_matches_pairwise_merge() {
        let d = dataset();
        for shards in [1, 3] {
            let index = ActionIndex::build_with_shards(&d, shards);
            let mut scratch = SimilarityScratch::new(d.num_users());
            for (user, profile) in d.iter() {
                index.accumulate(profile, user, &mut scratch);
                for (other, other_profile) in d.iter() {
                    let expected = if other == user {
                        0
                    } else {
                        profile.common_actions(other_profile) as u32
                    };
                    assert_eq!(
                        scratch.counts[other.index()],
                        expected,
                        "user {user} vs {other} ({shards} shards)"
                    );
                }
            }
        }
    }

    #[test]
    fn collect_top_orders_by_score_then_id() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let top = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(top, vec![(UserId(1), 2), (UserId(2), 1)]);
        let top1 = index.top_similar(&d, UserId(0), 1, &mut scratch);
        assert_eq!(top1, vec![(UserId(1), 2)]);
    }

    #[test]
    fn zero_network_size_yields_empty_networks() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        assert!(index.top_similar(&d, UserId(0), 0, &mut scratch).is_empty());
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_sweeps() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let first = index.top_similar(&d, UserId(0), 10, &mut scratch);
        let isolated = index.top_similar(&d, UserId(3), 10, &mut scratch);
        assert!(isolated.is_empty());
        let again = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(first, again);
    }

    #[test]
    fn apply_delta_patches_postings_and_reports_dirty() {
        let mut d = dataset();
        for shards in [1, 2, 4] {
            let mut index = ActionIndex::build_with_shards(&d, shards);
            // User 3 adds an action user 2 already has, plus a brand-new key.
            let delta = [act(9, 9), act(50, 50)];
            let outcome = index.apply_delta(UserId(3), &delta);
            d.profile_mut(UserId(3)).extend(delta);
            assert_eq!(outcome.changed, vec![UserId(3)]);
            // u2's score against u3 grew via act(9,9); act(50,50) is hers
            // alone and affects nobody else.
            assert_eq!(outcome.pairs, vec![(UserId(2), UserId(3))]);
            assert_eq!(outcome.dirty_users(), vec![UserId(2), UserId(3)]);
            assert_eq!(index.taggers_of(&act(9, 9)), &[2, 3]);
            assert_eq!(index.taggers_of(&act(50, 50)), &[3]);
            assert_matches_fresh_build(&index, &d);
            // Reset for the next shard count.
            d = dataset();
        }
    }

    #[test]
    fn duplicate_deltas_are_noops_with_empty_dirty_set() {
        let d = dataset();
        let mut index = ActionIndex::build(&d);
        // Every action already in the profile: nothing changes.
        let outcome = index.apply_delta(UserId(0), &[act(1, 1), act(2, 2)]);
        assert!(outcome.is_empty());
        assert!(outcome.dirty_users().is_empty());
        assert_matches_fresh_build(&index, &d);
        assert!(index.apply_delta(UserId(1), &[]).is_empty());
    }

    #[test]
    fn batched_deltas_touch_multiple_users_and_shards() {
        let mut d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 3);
        let d0 = [act(9, 9)];
        let d3 = [act(1, 1), act(200, 5)];
        let outcome = index.apply_deltas(vec![(UserId(0), &d0[..]), (UserId(3), &d3[..])]);
        d.profile_mut(UserId(0)).extend(d0);
        d.profile_mut(UserId(3)).extend(d3);
        // act(9,9) gains u0 (affecting u2); act(1,1) gains u3 (affecting
        // u0 and u1); act(200,5) is brand new and affects nobody. The
        // (u0, u3) pair is omitted: u0 is itself a changing user.
        assert_eq!(outcome.changed, vec![UserId(0), UserId(3)]);
        assert_eq!(
            outcome.pairs,
            vec![(UserId(1), UserId(3)), (UserId(2), UserId(0))]
        );
        assert_eq!(
            outcome.dirty_users(),
            vec![UserId(0), UserId(1), UserId(2), UserId(3)]
        );
        assert_matches_fresh_build(&index, &d);
    }

    #[test]
    fn remove_user_strips_postings_and_drops_empty_keys() {
        let mut d = dataset();
        for shards in [1, 2, 5] {
            let mut index = ActionIndex::build_with_shards(&d, shards);
            let old = d.profile(UserId(2)).clone();
            let dirty = index.remove_user(UserId(2), &old);
            *d.profile_mut(UserId(2)) = Profile::new();
            // u2 shared act(3,3) with u0; act(9,9) was hers alone.
            assert_eq!(dirty, vec![UserId(0), UserId(2)]);
            assert_eq!(index.taggers_of(&act(3, 3)), &[0]);
            assert!(index.taggers_of(&act(9, 9)).is_empty());
            assert_matches_fresh_build(&index, &d);
            d = dataset();
        }
    }

    #[test]
    fn remove_then_re_add_round_trips() {
        let d = dataset();
        let mut index = ActionIndex::build_with_shards(&d, 2);
        let profile = d.profile(UserId(0)).clone();
        let actions: Vec<TaggingAction> = profile.iter().copied().collect();
        index.remove_user(UserId(0), &profile);
        let outcome = index.apply_delta(UserId(0), &actions);
        assert_eq!(outcome.changed, vec![UserId(0)]);
        assert!(outcome.dirty_users().contains(&UserId(0)));
        assert_matches_fresh_build(&index, &d);
    }

    #[test]
    fn very_popular_gained_keys_use_resweep_instead_of_pairs() {
        // 130 users already share act(1,1); 65 more add it in one batch, so
        // affected members × gainers = 130 × 65 far exceeds
        // PAIR_EMISSION_CAP and pair emission must give way to a resweep
        // report.
        let profiles: Vec<Profile> = (0..195u32)
            .map(|i| {
                let mut actions = vec![act(200 + i, 1)];
                if i < 130 {
                    actions.push(act(1, 1));
                }
                Profile::from_actions(actions)
            })
            .collect();
        let mut d = Dataset::new(profiles, 400, 10);
        let mut index = ActionIndex::build(&d);
        let mut ideal = crate::baseline::IdealNetworks::compute_with_threads(&d, 5, 1);

        let deltas: Vec<(UserId, Vec<TaggingAction>)> =
            (130..195).map(|i| (UserId(i), vec![act(1, 1)])).collect();
        let outcome = index.apply_deltas(deltas.iter().map(|(u, a)| (*u, a.as_slice())));
        for (u, a) in &deltas {
            d.profile_mut(*u).extend(a.iter().copied());
        }
        assert_eq!(outcome.changed.len(), 65);
        assert!(
            outcome.pairs.is_empty(),
            "the capped key must not emit pairs"
        );
        assert_eq!(outcome.resweep.len(), 195);
        assert_matches_fresh_build(&index, &d);

        // The resweep path still reproduces a from-scratch compute.
        ideal.apply_delta_outcome(&d, &index, &outcome, 1);
        let oracle = crate::baseline::IdealNetworks::compute_with_threads(&d, 5, 1);
        for user in d.users() {
            assert_eq!(ideal.network_of(user), oracle.network_of(user), "{user}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown user")]
    fn delta_for_out_of_range_user_is_rejected() {
        let d = dataset();
        let mut index = ActionIndex::build(&d);
        let _ = index.apply_delta(UserId(99), &[act(1, 1)]);
    }

    #[test]
    fn empty_dataset_builds_an_empty_index() {
        let d = Dataset::default();
        let mut index = ActionIndex::build(&d);
        assert_eq!(index.distinct_actions(), 0);
        assert_eq!(index.num_shards(), 1);
        assert!(index.taggers_of(&act(1, 1)).is_empty());
        assert!(index.apply_deltas(std::iter::empty()).is_empty());
    }
}
