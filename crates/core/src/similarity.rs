//! The similarity engine: counting-based, index-backed computation of the
//! paper's profile-similarity score at population scale.
//!
//! `Score_{u}(v) = |Profile(u) ∩ Profile(v)|` is evaluated everywhere in the
//! P3Q evaluation: once per candidate pair when building the ideal personal
//! networks (Section 3.2.1) and once per offer on every gossip exchange.
//! The naive route — a linear merge of the two sorted profiles per pair —
//! costs `O(|P_u| + |P_v|)` even when the intersection is empty, which is
//! what capped trace sizes before this module existed.
//!
//! [`ActionIndex`] inverts the dataset once: for every distinct tagging
//! action `(item, tag)` it stores the posting list of users whose profile
//! contains it. Scoring one user against *everyone* then becomes a counting
//! sweep: walk her actions, and for each action bump a dense per-user
//! accumulator for every other user on that posting list. The total work is
//! proportional to the number of *actually shared* actions — the
//! intersection mass — instead of the sum of profile lengths over all
//! candidate pairs.
//!
//! The per-user loop is embarrassingly parallel and runs through
//! [`p3q_sim::parallel_map_chunks`], which guarantees output identical for
//! every worker-thread count (set `P3Q_THREADS=1` to pin).

use p3q_trace::{Dataset, Profile, TaggingAction, UserId};

/// Scratch space for one scoring sweep: a dense per-user counter plus the
/// list of touched slots so that clearing costs `O(touched)`, not
/// `O(num_users)`.
#[derive(Debug, Clone)]
pub struct SimilarityScratch {
    counts: Vec<u32>,
    touched: Vec<u32>,
}

impl SimilarityScratch {
    /// Creates scratch space for a population of `num_users`.
    pub fn new(num_users: usize) -> Self {
        Self {
            counts: vec![0; num_users],
            touched: Vec::new(),
        }
    }
}

/// A counting inverted index over every distinct tagging action of a
/// dataset.
///
/// Layout is CSR: `keys` holds the distinct `(item, tag)` actions in sorted
/// order, `offsets[i]..offsets[i + 1]` delimits the posting list of
/// `keys[i]` inside `users`, and every posting list is in ascending user
/// order. Building the index costs one sort of the (action, user) pairs —
/// `O(A log A)` for `A` total actions — and is done once per dataset.
#[derive(Debug, Clone)]
pub struct ActionIndex {
    keys: Vec<u64>,
    offsets: Vec<u32>,
    users: Vec<u32>,
    num_users: usize,
}

fn action_key(action: &TaggingAction) -> u64 {
    (u64::from(action.item.0) << 32) | u64::from(action.tag.0)
}

impl ActionIndex {
    /// Builds the index over every profile of the dataset.
    pub fn build(dataset: &Dataset) -> Self {
        let total: usize = dataset.iter().map(|(_, p)| p.len()).sum();
        let mut pairs: Vec<(u64, u32)> = Vec::with_capacity(total);
        for (user, profile) in dataset.iter() {
            for action in profile.iter() {
                pairs.push((action_key(action), user.0));
            }
        }
        // Sorting by (key, user) groups postings and keeps each list in
        // ascending user order, independent of iteration details.
        pairs.sort_unstable();

        let mut keys = Vec::new();
        let mut offsets = Vec::with_capacity(pairs.len() / 2);
        let mut users = Vec::with_capacity(pairs.len());
        // Offsets are u32 to halve the index footprint; fail loudly rather
        // than silently wrapping if a dataset ever exceeds 2^32 actions.
        let offset_of = |len: usize| {
            u32::try_from(len).expect("ActionIndex supports at most 2^32 - 1 total actions")
        };
        for (key, user) in pairs {
            if keys.last() != Some(&key) {
                keys.push(key);
                offsets.push(offset_of(users.len()));
            }
            users.push(user);
        }
        offsets.push(offset_of(users.len()));
        Self {
            keys,
            offsets,
            users,
            num_users: dataset.num_users(),
        }
    }

    /// Number of users covered by the index.
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of distinct tagging actions in the index.
    pub fn distinct_actions(&self) -> usize {
        self.keys.len()
    }

    /// The users whose profile contains `action`, in ascending order.
    pub fn taggers_of(&self, action: &TaggingAction) -> &[u32] {
        match self.keys.binary_search(&action_key(action)) {
            Ok(pos) => &self.users[self.offsets[pos] as usize..self.offsets[pos + 1] as usize],
            Err(_) => &[],
        }
    }

    /// Scores `profile` against every indexed user in one counting sweep.
    ///
    /// After the call, `scratch.counts[v]` holds `|profile ∩ Profile(v)|`
    /// for every user `v` in `scratch.touched` (slots outside `touched` are
    /// zero). `exclude` removes one user (the profile's owner) from the
    /// result. The caller must drain the scratch through
    /// [`Self::collect_top`] or clear it via the next `accumulate` call —
    /// the sweep starts by resetting only previously touched slots.
    pub fn accumulate(&self, profile: &Profile, exclude: UserId, scratch: &mut SimilarityScratch) {
        debug_assert_eq!(scratch.counts.len(), self.num_users);
        for &slot in &scratch.touched {
            scratch.counts[slot as usize] = 0;
        }
        scratch.touched.clear();

        // The profile's actions and the index keys are both sorted, so each
        // posting lookup narrows the remaining search window instead of
        // re-scanning the whole key space.
        let mut lo = 0usize;
        for action in profile.iter() {
            let key = action_key(action);
            match self.keys[lo..].binary_search(&key) {
                Ok(rel) => {
                    let pos = lo + rel;
                    lo = pos + 1;
                    let start = self.offsets[pos] as usize;
                    let end = self.offsets[pos + 1] as usize;
                    for &user in &self.users[start..end] {
                        if user == exclude.0 {
                            continue;
                        }
                        let slot = &mut scratch.counts[user as usize];
                        if *slot == 0 {
                            scratch.touched.push(user);
                        }
                        *slot += 1;
                    }
                }
                Err(rel) => lo += rel,
            }
        }
    }

    /// Extracts the top-`network_size` scored users from a finished sweep:
    /// `(user, score)` pairs with positive scores, in descending score order
    /// with ties broken by ascending user id — exactly the ideal
    /// personal-network ordering of [`crate::baseline::IdealNetworks`].
    pub fn collect_top(
        &self,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        if network_size == 0 {
            return Vec::new();
        }
        let mut scored: Vec<(UserId, u64)> = scratch
            .touched
            .iter()
            .map(|&user| (UserId(user), u64::from(scratch.counts[user as usize])))
            .collect();
        let by_rank = |a: &(UserId, u64), b: &(UserId, u64)| b.1.cmp(&a.1).then(a.0.cmp(&b.0));
        if scored.len() > network_size {
            // Partial selection: only the retained prefix needs a full sort.
            scored.select_nth_unstable_by(network_size - 1, by_rank);
            scored.truncate(network_size);
        }
        scored.sort_unstable_by(by_rank);
        scored
    }

    /// Convenience wrapper: the top-`network_size` most similar users to
    /// `user`, using (and resetting) `scratch`.
    pub fn top_similar(
        &self,
        dataset: &Dataset,
        user: UserId,
        network_size: usize,
        scratch: &mut SimilarityScratch,
    ) -> Vec<(UserId, u64)> {
        self.accumulate(dataset.profile(user), user, scratch);
        self.collect_top(network_size, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3q_trace::{ItemId, TagId};

    fn act(item: u32, tag: u32) -> TaggingAction {
        TaggingAction::new(ItemId(item), TagId(tag))
    }

    fn dataset() -> Dataset {
        let p0 = Profile::from_actions(vec![act(1, 1), act(2, 2), act(3, 3)]);
        let p1 = Profile::from_actions(vec![act(1, 1), act(2, 2)]);
        let p2 = Profile::from_actions(vec![act(3, 3), act(9, 9)]);
        let p3 = Profile::from_actions(vec![act(100, 100)]);
        Dataset::new(vec![p0, p1, p2, p3], 200, 200)
    }

    #[test]
    fn taggers_lists_are_sorted_and_complete() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        assert_eq!(index.num_users(), 4);
        assert_eq!(index.distinct_actions(), 5);
        assert_eq!(index.taggers_of(&act(1, 1)), &[0, 1]);
        assert_eq!(index.taggers_of(&act(3, 3)), &[0, 2]);
        assert_eq!(index.taggers_of(&act(100, 100)), &[3]);
        assert!(index.taggers_of(&act(42, 42)).is_empty());
    }

    #[test]
    fn counting_sweep_matches_pairwise_merge() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        for (user, profile) in d.iter() {
            index.accumulate(profile, user, &mut scratch);
            for (other, other_profile) in d.iter() {
                let expected = if other == user {
                    0
                } else {
                    profile.common_actions(other_profile) as u32
                };
                assert_eq!(
                    scratch.counts[other.index()],
                    expected,
                    "user {user} vs {other}"
                );
            }
        }
    }

    #[test]
    fn collect_top_orders_by_score_then_id() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let top = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(top, vec![(UserId(1), 2), (UserId(2), 1)]);
        let top1 = index.top_similar(&d, UserId(0), 1, &mut scratch);
        assert_eq!(top1, vec![(UserId(1), 2)]);
    }

    #[test]
    fn zero_network_size_yields_empty_networks() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        assert!(index.top_similar(&d, UserId(0), 0, &mut scratch).is_empty());
    }

    #[test]
    fn scratch_reuse_does_not_leak_between_sweeps() {
        let d = dataset();
        let index = ActionIndex::build(&d);
        let mut scratch = SimilarityScratch::new(d.num_users());
        let first = index.top_similar(&d, UserId(0), 10, &mut scratch);
        let isolated = index.top_similar(&d, UserId(3), 10, &mut scratch);
        assert!(isolated.is_empty());
        let again = index.top_similar(&d, UserId(0), 10, &mut scratch);
        assert_eq!(first, again);
    }
}
