//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the P3Q protocol (Section 2.1 / 3.1.2 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P3qConfig {
    /// Size `s` of the personal network: the number of most-similar
    /// neighbours every user tracks (paper: 1000).
    pub personal_network_size: usize,
    /// Size `r` of the random view maintained by the peer-sampling layer
    /// (paper: 10).
    pub random_view_size: usize,
    /// `k` of the top-k queries (paper: 10).
    pub top_k: usize,
    /// The remaining-list split parameter `α ∈ [0, 1]` of the eager mode
    /// (paper default: 0.5, shown optimal by Theorem 2.2).
    pub alpha: f64,
    /// Maximum number of neighbour profiles proposed in one lazy-mode gossip
    /// exchange (paper: 50, or everything if fewer are stored).
    pub profiles_per_gossip: usize,
    /// Bloom-filter size of the profile digests, in bits (paper: 20 Kbit).
    pub digest_bits: usize,
    /// Number of hash functions of the profile digests.
    pub digest_hashes: u32,
    /// Wall-clock seconds per lazy-mode cycle (paper: 60 s), used only to
    /// convert byte counts into bits-per-second figures.
    pub lazy_cycle_seconds: f64,
    /// Wall-clock seconds per eager-mode cycle (paper: 5 s).
    pub eager_cycle_seconds: f64,
    /// Fault-hardening: lifetime, in cycles, of query state under loss.
    /// Delegated remaining-list shares expire this many cycles after they
    /// were (last) refreshed, and a querier stops re-gossiping an
    /// incomplete query this many cycles after issuing it. `0` disables
    /// both (the paper's idealized network needs neither).
    pub query_ttl_cycles: u64,
    /// Fault-hardening: base backoff, in cycles, before a querier re-adds
    /// her still-uncovered target profiles to the remaining list after a
    /// stretch of cycles without progress (a lost carrier exchange leaves
    /// no other trace). Doubles per retry. `0` disables retries.
    pub retry_backoff_cycles: u64,
    /// Fault-hardening: a personal-network neighbour whose staleness
    /// timestamp exceeds this limit is evicted — under crash faults a dead
    /// neighbour never answers gossip, so its timestamp grows without
    /// bound while live ones keep getting reset. `0` disables eviction.
    ///
    /// Only lazy gossip resets staleness, so this knob **requires lazy
    /// refresh cycles to interleave with eager ones**: in an eager-only run
    /// every timestamp grows monotonically and the personal network evicts
    /// itself wholesale after `limit` cycles. Until-idle eager drives
    /// ([`EagerProtocol`](crate::eager::EagerProtocol) under
    /// `RunOptions::until_complete`) reject a nonzero limit via
    /// [`Self::validate_eager_only`].
    pub neighbour_staleness_limit: u32,
}

impl P3qConfig {
    /// The configuration used throughout the paper's evaluation
    /// (10,000-user delicious trace): `s = 1000`, `r = 10`, `k = 10`,
    /// `α = 0.5`, 50 profiles per gossip, 20 Kbit digests.
    pub fn paper(_users: usize) -> Self {
        Self {
            personal_network_size: 1000,
            random_view_size: 10,
            top_k: 10,
            alpha: 0.5,
            profiles_per_gossip: 50,
            digest_bits: p3q_bloom::PAPER_FILTER_BITS,
            digest_hashes: p3q_bloom::PAPER_FILTER_HASHES,
            lazy_cycle_seconds: 60.0,
            eager_cycle_seconds: 5.0,
            query_ttl_cycles: 0,
            retry_backoff_cycles: 0,
            neighbour_staleness_limit: 0,
        }
    }

    /// A laptop-scale configuration for a system of roughly 1,000 users:
    /// the personal network is scaled to `s = 100` (the same 1:10 ratio to
    /// the population as the paper's 1000:10,000) and digests are shrunk
    /// accordingly; every other parameter keeps its paper value.
    pub fn laptop_scale() -> Self {
        Self {
            personal_network_size: 100,
            random_view_size: 10,
            top_k: 10,
            alpha: 0.5,
            profiles_per_gossip: 50,
            digest_bits: 4 * 1024,
            digest_hashes: 7,
            lazy_cycle_seconds: 60.0,
            eager_cycle_seconds: 5.0,
            query_ttl_cycles: 0,
            retry_backoff_cycles: 0,
            neighbour_staleness_limit: 0,
        }
    }

    /// A tiny configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            personal_network_size: 10,
            random_view_size: 5,
            top_k: 5,
            alpha: 0.5,
            profiles_per_gossip: 10,
            digest_bits: 2048,
            digest_hashes: 5,
            lazy_cycle_seconds: 60.0,
            eager_cycle_seconds: 5.0,
            query_ttl_cycles: 0,
            retry_backoff_cycles: 0,
            neighbour_staleness_limit: 0,
        }
    }

    /// Returns a copy with the fault-hardening machinery switched on:
    /// query TTL / deadline tracking, querier retry-with-backoff and
    /// staleness-based neighbour eviction. Passing `0` for a knob leaves
    /// that mechanism disabled.
    ///
    /// A nonzero `neighbour_staleness_limit` is only sound when lazy
    /// refresh cycles interleave with eager ones (see the field docs);
    /// eager-only run loops enforce this via
    /// [`Self::validate_eager_only`].
    pub fn with_fault_tolerance(
        mut self,
        query_ttl_cycles: u64,
        retry_backoff_cycles: u64,
        neighbour_staleness_limit: u32,
    ) -> Self {
        self.query_ttl_cycles = query_ttl_cycles;
        self.retry_backoff_cycles = retry_backoff_cycles;
        self.neighbour_staleness_limit = neighbour_staleness_limit;
        self.validate();
        self
    }

    /// Returns a copy with a different `α`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self.validate();
        self
    }

    /// Returns a copy with a different top-k.
    pub fn with_top_k(mut self, k: usize) -> Self {
        self.top_k = k;
        self.validate();
        self
    }

    /// The lazy mode ([`LazyProtocol`](crate::lazy::LazyProtocol)) over a
    /// copy of this configuration — the protocol value handed to a
    /// runtime's `drive` entry.
    pub fn lazy(&self) -> crate::lazy::LazyProtocol {
        crate::lazy::LazyProtocol::new(self.clone())
    }

    /// The eager mode ([`EagerProtocol`](crate::eager::EagerProtocol)) over
    /// a copy of this configuration.
    pub fn eager(&self) -> crate::eager::EagerProtocol {
        crate::eager::EagerProtocol::new(self.clone())
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    /// Panics if any parameter is out of its valid range.
    pub fn validate(&self) {
        assert!(
            self.personal_network_size > 0,
            "personal_network_size must be positive"
        );
        assert!(
            self.random_view_size > 0,
            "random_view_size must be positive"
        );
        assert!(self.top_k > 0, "top_k must be positive");
        assert!(
            (0.0..=1.0).contains(&self.alpha),
            "alpha must lie in [0, 1]"
        );
        assert!(
            self.profiles_per_gossip > 0,
            "profiles_per_gossip must be positive"
        );
        assert!(self.digest_bits > 0, "digest_bits must be positive");
        assert!(self.digest_hashes > 0, "digest_hashes must be positive");
        assert!(
            self.lazy_cycle_seconds > 0.0 && self.eager_cycle_seconds > 0.0,
            "cycle durations must be positive"
        );
        if self.query_ttl_cycles > 0 && self.retry_backoff_cycles > 0 {
            assert!(
                self.retry_backoff_cycles <= self.query_ttl_cycles,
                "retry_backoff_cycles must not exceed query_ttl_cycles \
                 (the first retry could never fire before the deadline)"
            );
        }
    }

    /// Checks that the configuration is sound for an **eager-only** run —
    /// one where no lazy refresh cycles interleave with the eager ones.
    ///
    /// Only lazy gossip resets neighbour staleness, so with a nonzero
    /// [`neighbour_staleness_limit`](Self::neighbour_staleness_limit) an
    /// eager-only run silently evicts the *entire* personal network (live
    /// neighbours included) once every timestamp passes the limit.
    /// [`EagerProtocol`](crate::eager::EagerProtocol)'s `begin_run` hook
    /// calls this on until-idle drives so the footgun fails loudly instead.
    ///
    /// # Panics
    /// Panics if `neighbour_staleness_limit` is nonzero.
    pub fn validate_eager_only(&self) {
        assert!(
            self.neighbour_staleness_limit == 0,
            "neighbour_staleness_limit = {} in an eager-only run: only lazy \
             gossip resets staleness, so the personal network would evict \
             itself wholesale. Interleave lazy refresh cycles (alternate \
             eager and lazy drives yourself) or set the limit to 0.",
            self.neighbour_staleness_limit
        );
    }
}

impl Default for P3qConfig {
    fn default() -> Self {
        Self::laptop_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_section_3_1_2() {
        let cfg = P3qConfig::paper(10_000);
        assert_eq!(cfg.personal_network_size, 1000);
        assert_eq!(cfg.random_view_size, 10);
        assert_eq!(cfg.top_k, 10);
        assert!((cfg.alpha - 0.5).abs() < 1e-12);
        assert_eq!(cfg.profiles_per_gossip, 50);
        assert_eq!(cfg.digest_bits, 20 * 1024);
        cfg.validate();
    }

    #[test]
    fn presets_validate() {
        P3qConfig::laptop_scale().validate();
        P3qConfig::tiny().validate();
        P3qConfig::default().validate();
    }

    #[test]
    fn with_alpha_and_top_k_update_fields() {
        let cfg = P3qConfig::tiny().with_alpha(0.3).with_top_k(20);
        assert!((cfg.alpha - 0.3).abs() < 1e-12);
        assert_eq!(cfg.top_k, 20);
    }

    #[test]
    fn fault_tolerance_defaults_off_and_builder_sets_knobs() {
        for cfg in [
            P3qConfig::paper(10_000),
            P3qConfig::laptop_scale(),
            P3qConfig::tiny(),
        ] {
            assert_eq!(cfg.query_ttl_cycles, 0);
            assert_eq!(cfg.retry_backoff_cycles, 0);
            assert_eq!(cfg.neighbour_staleness_limit, 0);
        }
        let cfg = P3qConfig::tiny().with_fault_tolerance(12, 3, 8);
        assert_eq!(cfg.query_ttl_cycles, 12);
        assert_eq!(cfg.retry_backoff_cycles, 3);
        assert_eq!(cfg.neighbour_staleness_limit, 8);
    }

    #[test]
    #[should_panic(expected = "retry_backoff_cycles")]
    fn retry_backoff_beyond_ttl_rejected() {
        let _ = P3qConfig::tiny().with_fault_tolerance(2, 5, 0);
    }

    #[test]
    fn eager_only_validation_accepts_disabled_staleness_eviction() {
        P3qConfig::tiny().validate_eager_only();
        P3qConfig::tiny()
            .with_fault_tolerance(12, 3, 0)
            .validate_eager_only();
    }

    #[test]
    #[should_panic(expected = "eager-only run")]
    fn eager_only_validation_rejects_staleness_eviction() {
        P3qConfig::tiny()
            .with_fault_tolerance(12, 3, 8)
            .validate_eager_only();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let _ = P3qConfig::tiny().with_alpha(1.5);
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn zero_top_k_rejected() {
        let _ = P3qConfig::tiny().with_top_k(0);
    }
}
