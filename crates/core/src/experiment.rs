//! Reusable experiment plumbing: building a simulator from a dataset,
//! initialising personal networks, and measuring storage.
//!
//! The benchmark harness (one binary per paper figure) and the examples are
//! thin layers over these helpers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use p3q_sim::Simulator;
use p3q_trace::{ChangeBatch, Dataset, UserId};

use crate::baseline::IdealNetworks;
use crate::config::P3qConfig;
use crate::node::P3qNode;
use crate::storage::StorageDistribution;

/// Builds one [`P3qNode`] per user of the dataset and wraps them in a
/// [`Simulator`]. Storage budgets are drawn from `storage` (scaled to the
/// configured personal-network size) with a seed derived from `seed`.
pub fn build_simulator(
    dataset: &Dataset,
    cfg: &P3qConfig,
    storage: &StorageDistribution,
    seed: u64,
) -> Simulator<P3qNode> {
    cfg.validate();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FF_EE00);
    let budgets = storage.assign(dataset.num_users(), cfg.personal_network_size, &mut rng);
    build_simulator_with_budgets(dataset, cfg, &budgets, seed)
}

/// Like [`build_simulator`] but with explicit per-user storage budgets
/// (expressed in numbers of profiles, already scaled).
pub fn build_simulator_with_budgets(
    dataset: &Dataset,
    cfg: &P3qConfig,
    budgets: &[usize],
    seed: u64,
) -> Simulator<P3qNode> {
    assert_eq!(
        budgets.len(),
        dataset.num_users(),
        "one storage budget per user is required"
    );
    let nodes: Vec<P3qNode> = dataset
        .users()
        .map(|user| {
            P3qNode::new(
                user,
                dataset.shared_profile(user).clone(),
                cfg.personal_network_size,
                cfg.random_view_size,
                budgets[user.index()],
                cfg.digest_bits,
                cfg.digest_hashes,
            )
        })
        .collect();
    Simulator::new(nodes, seed)
}

/// Initialises every node's personal network with its *ideal* content: the
/// top-`s` most similar users, with the top-`c` profiles stored locally.
///
/// The paper's eager-mode experiments (Figures 3, 4, 6, 8, 11) evaluate the
/// query protocol on personal networks that have already been built; this
/// helper produces exactly that starting point without having to run
/// hundreds of lazy cycles first.
pub fn init_ideal_networks(sim: &mut Simulator<P3qNode>, ideal: &IdealNetworks) {
    /// Digest, profile and their (single) version, read together so no later
    /// pass can observe the peer at a different version.
    struct PeerSnapshot {
        peer: UserId,
        score: u64,
        digest: p3q_bloom::SharedFilter,
        profile: p3q_trace::SharedProfile,
        version: u64,
    }

    let n = sim.num_nodes();
    for idx in 0..n {
        // Snapshot every ideal neighbour exactly once: the record pass and
        // the fill-missing pass below both reuse this copy, so a peer whose
        // profile mutates mid-initialisation can never be stored at a
        // version its recorded digest does not match.
        let snapshots: Vec<PeerSnapshot> = ideal
            .network_of(UserId::from_index(idx))
            .iter()
            .map(|&(peer, score)| {
                let peer_node = sim.node(peer.index());
                PeerSnapshot {
                    peer,
                    score,
                    digest: peer_node.shared_digest().clone(),
                    profile: peer_node.shared_profile().clone(),
                    version: peer_node.profile_version(),
                }
            })
            .collect();
        for snap in &snapshots {
            let node = sim.node_mut(idx);
            node.record_neighbour(snap.peer, snap.score, snap.digest.clone(), snap.version);
            let rank = node
                .personal_network
                .rank_of(&snap.peer)
                .unwrap_or(usize::MAX);
            if rank < node.storage_budget() {
                node.store_profile(snap.peer, snap.profile.clone(), snap.version);
            }
        }
        // A second pass to be sure the storage rule holds after all inserts
        // (an early-stored profile may have been pushed out of the top-c by a
        // later, better neighbour).
        let node = sim.node_mut(idx);
        node.enforce_storage_budget();
        let missing: Vec<UserId> = node
            .personal_network
            .top_peers(node.storage_budget())
            .into_iter()
            .filter(|p| !node.has_stored_profile(p))
            .collect();
        for peer in missing {
            let snap = snapshots
                .iter()
                .find(|s| s.peer == peer)
                .expect("every personal-network member came from the snapshot pass");
            sim.node_mut(idx)
                .store_profile(peer, snap.profile.clone(), snap.version);
        }
    }
}

/// Applies one batch of profile changes to the owners' nodes (profile
/// dynamics): every changing user's own profile grows and her version bumps,
/// turning the copies cached in other users' personal networks stale.
///
/// This is the canonical "one day of activity happens at cycle X" event of
/// the dynamics experiments (Figures 7, 9, 10, Table 2) — schedule it in an
/// [`p3q_sim::EventQueue`] and fire it through the run loop. Returns the
/// number of genuinely new actions applied.
pub fn apply_profile_changes(sim: &mut Simulator<P3qNode>, batch: &ChangeBatch) -> usize {
    let mut added = 0;
    for change in &batch.changes {
        added += sim
            .node_mut(change.user.index())
            .add_tagging_actions(change.new_actions.iter().copied());
    }
    added
}

/// Per-user storage requirement (Figure 5): total length, in tagging
/// actions, of the profiles stored in each user's personal network. Returned
/// in user-id order.
pub fn storage_requirements(sim: &Simulator<P3qNode>) -> Vec<usize> {
    sim.nodes()
        .iter()
        .map(|node| node.stored_profiles().map(|(_, p, _)| p.len()).sum())
        .collect()
}

/// Total length, in tagging actions, of *all* profiles of each user's
/// personal network (stored or not) — the 100% reference the paper compares
/// the per-`c` storage against ("storing 10 profiles requires only 6.8% of
/// the space required to store all profiles in the personal network").
pub fn full_network_requirements(sim: &Simulator<P3qNode>, dataset: &Dataset) -> Vec<usize> {
    sim.nodes()
        .iter()
        .map(|node| {
            node.network_peers()
                .iter()
                .map(|peer| dataset.profile(*peer).len())
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3q_trace::{TraceConfig, TraceGenerator};

    fn setup() -> (Dataset, P3qConfig) {
        let trace = TraceGenerator::new(TraceConfig::tiny(23)).generate();
        (trace.dataset, P3qConfig::tiny())
    }

    #[test]
    fn build_simulator_creates_one_node_per_user() {
        let (dataset, cfg) = setup();
        let sim = build_simulator(&dataset, &cfg, &StorageDistribution::Uniform(100), 1);
        assert_eq!(sim.num_nodes(), dataset.num_users());
        for idx in 0..sim.num_nodes() {
            assert_eq!(sim.node(idx).id, UserId::from_index(idx));
            assert_eq!(
                sim.node(idx).profile(),
                dataset.profile(UserId::from_index(idx))
            );
        }
    }

    #[test]
    fn budgets_are_scaled_to_network_size() {
        let (dataset, cfg) = setup();
        // Uniform 100 out of 1000 → 1/10 of s = 10 → scaled to s=10 → 1.
        let sim = build_simulator(&dataset, &cfg, &StorageDistribution::Uniform(100), 1);
        for idx in 0..sim.num_nodes() {
            assert_eq!(sim.node(idx).storage_budget(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "one storage budget per user")]
    fn mismatched_budget_length_rejected() {
        let (dataset, cfg) = setup();
        let _ = build_simulator_with_budgets(&dataset, &cfg, &[1, 2, 3], 0);
    }

    #[test]
    fn ideal_initialisation_fills_networks_and_respects_storage() {
        let (dataset, cfg) = setup();
        let ideal = IdealNetworks::compute(&dataset, cfg.personal_network_size);
        let budgets = vec![3usize; dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&dataset, &cfg, &budgets, 7);
        init_ideal_networks(&mut sim, &ideal);
        for idx in 0..sim.num_nodes() {
            let node = sim.node(idx);
            let expected = ideal.neighbours_of(UserId::from_index(idx));
            let expected_len = expected.len().min(cfg.personal_network_size);
            assert_eq!(node.network_peers().len(), expected_len);
            assert!(node.stored_profile_count() <= 3);
            // Stored copies must match the owners' actual profiles.
            for (peer, profile, _) in node.stored_profiles() {
                assert_eq!(profile, dataset.profile(peer));
            }
            // Every top-c neighbour has a stored profile.
            for peer in node.personal_network.top_peers(node.storage_budget()) {
                assert!(node.has_stored_profile(&peer));
            }
        }
    }

    #[test]
    fn storage_requirements_grow_with_budget() {
        let (dataset, cfg) = setup();
        let ideal = IdealNetworks::compute(&dataset, cfg.personal_network_size);

        let mut small =
            build_simulator_with_budgets(&dataset, &cfg, &vec![1usize; dataset.num_users()], 7);
        init_ideal_networks(&mut small, &ideal);
        let mut large =
            build_simulator_with_budgets(&dataset, &cfg, &vec![8usize; dataset.num_users()], 7);
        init_ideal_networks(&mut large, &ideal);

        let small_total: usize = storage_requirements(&small).iter().sum();
        let large_total: usize = storage_requirements(&large).iter().sum();
        let full_total: usize = full_network_requirements(&large, &dataset).iter().sum();
        assert!(small_total < large_total);
        assert!(large_total <= full_total);
    }
}
