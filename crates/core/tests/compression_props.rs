//! Property tests pinning the compressed columnar storage stack.
//!
//! The [`ActionIndex`] stores its keys in the interned action dictionary
//! (delta-varint blocks) and its posting lists as delta-varint runs; none
//! of that may be observable. This suite pins:
//!
//! * every posting list of a compressed index equal to an independently
//!   built **uncompressed** reference (a plain `HashMap<action, Vec<user>>`)
//!   on random traces, through random delta batches and churn removals,
//!   for several shard layouts;
//! * [`IdealNetworks::compute`] over the compressed index byte-identical
//!   across worker-thread counts 1/3/8 (the counts CI replays the suite
//!   under via `P3Q_THREADS`);
//! * dictionary round-trip (`intern`/`id_of`/`resolve`) and the
//!   order-isomorphism of frozen ids;
//! * [`PackedProfile`] round-trip and its compression guarantee;
//! * the [`ActionIndex::memory`] report: internally consistent, and the
//!   compressed layout strictly below the uncompressed CSR equivalent on
//!   non-trivial traces.

use std::collections::HashMap;

use proptest::prelude::*;

use p3q::baseline::IdealNetworks;
use p3q::similarity::ActionIndex;
use p3q_trace::{
    action_key, Dataset, ItemId, PackedProfile, Profile, TagId, TaggingAction, TraceConfig,
    TraceGenerator, UserId,
};

fn act(item: u32, tag: u32) -> TaggingAction {
    TaggingAction::new(ItemId(item), TagId(tag))
}

/// A small random dataset with dense ids so shared actions are common.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec((0u32..14, 0u32..7), 0..28), 2..14).prop_map(
        |users| {
            let profiles: Vec<Profile> = users
                .into_iter()
                .map(|actions| Profile::from_actions(actions.into_iter().map(|(i, t)| act(i, t))))
                .collect();
            Dataset::new(profiles, 14, 7)
        },
    )
}

/// The uncompressed oracle: a plain hash-map inverted index, built with no
/// shared code paths (no dictionary, no varints, no shards).
#[derive(Debug, Default, Clone)]
struct UncompressedIndex {
    postings: HashMap<TaggingAction, Vec<u32>>,
}

impl UncompressedIndex {
    fn build(dataset: &Dataset) -> Self {
        let mut postings: HashMap<TaggingAction, Vec<u32>> = HashMap::new();
        for (user, profile) in dataset.iter() {
            for action in profile.iter() {
                postings.entry(*action).or_default().push(user.0);
            }
        }
        for list in postings.values_mut() {
            list.sort_unstable();
        }
        Self { postings }
    }

    fn taggers_of(&self, action: &TaggingAction) -> Vec<u32> {
        self.postings.get(action).cloned().unwrap_or_default()
    }

    fn distinct_actions(&self) -> usize {
        self.postings.len()
    }
}

/// Asserts compressed and uncompressed agree on every probed action: all
/// indexed actions plus a grid of absent ones. Also pins the memory
/// report's incrementally maintained posting counter to the oracle's
/// ground truth (it is updated across delta batches and churn, never
/// recounted).
fn assert_indexes_agree(index: &ActionIndex, oracle: &UncompressedIndex) {
    assert_eq!(index.distinct_actions(), oracle.distinct_actions());
    assert_eq!(
        index.memory().postings,
        oracle.postings.values().map(Vec::len).sum::<usize>(),
        "posting counter diverged from ground truth"
    );
    for (action, expected) in &oracle.postings {
        assert_eq!(&index.taggers_of(action), expected, "{action}");
    }
    for item in 0..16u32 {
        for tag in 0..8u32 {
            let probe = act(item, tag);
            assert_eq!(
                index.taggers_of(&probe),
                oracle.taggers_of(&probe),
                "probe {probe}"
            );
        }
    }
}

proptest! {
    /// Compressed postings equal the uncompressed oracle on fresh builds,
    /// for every shard layout.
    #[test]
    fn compressed_build_matches_uncompressed(dataset in arb_dataset(), shards in 1usize..6) {
        let index = ActionIndex::build_with_shards(&dataset, shards);
        let oracle = UncompressedIndex::build(&dataset);
        assert_indexes_agree(&index, &oracle);
    }

    /// Compressed postings stay equal to an uncompressed rebuild through
    /// random delta batches (only touched shards are recompressed).
    #[test]
    fn compressed_index_survives_delta_batches(
        dataset in arb_dataset(),
        shards in 1usize..5,
        batches in prop::collection::vec(
            prop::collection::vec((0usize..14, 0u32..16, 0u32..8), 1..6),
            1..4,
        ),
    ) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build_with_shards(&dataset, shards);
        for batch in batches {
            let deltas: Vec<(UserId, Vec<TaggingAction>)> = batch
                .into_iter()
                .map(|(user, item, tag)| {
                    let user = UserId::from_index(user % dataset.num_users());
                    (user, vec![act(item, tag)])
                })
                .collect();
            let outcome = index.apply_deltas(deltas.iter().map(|(u, a)| (*u, a.as_slice())));
            let mut changed: Vec<UserId> = Vec::new();
            for (user, actions) in &deltas {
                if dataset.profile_mut(*user).extend(actions.iter().copied()) > 0 {
                    changed.push(*user);
                }
            }
            changed.sort_unstable();
            changed.dedup();
            prop_assert_eq!(&outcome.changed, &changed, "changing users diverged");
            assert_indexes_agree(&index, &UncompressedIndex::build(&dataset));
        }
    }

    /// Compressed postings stay equal to an uncompressed rebuild through
    /// churn: departed users are stripped shard-locally.
    #[test]
    fn compressed_index_survives_churn(dataset in arb_dataset(), step in 1usize..4) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build(&dataset);
        let departed: Vec<UserId> = dataset.users().step_by(step).collect();
        for user in departed {
            let old = dataset.profile(user).clone();
            index.remove_user(user, &old);
            *dataset.profile_mut(user) = Profile::new();
            assert_indexes_agree(&index, &UncompressedIndex::build(&dataset));
        }
    }

    /// Ideal networks over the compressed index are byte-identical for
    /// worker-thread counts 1, 3 and 8.
    #[test]
    fn compute_is_thread_count_independent(dataset in arb_dataset(), s in 1usize..8) {
        let one = IdealNetworks::compute_with_threads(&dataset, s, 1);
        for threads in [3usize, 8] {
            let other = IdealNetworks::compute_with_threads(&dataset, s, threads);
            for user in dataset.users() {
                prop_assert_eq!(
                    one.network_of(user),
                    other.network_of(user),
                    "threads {} diverged for {}", threads, user
                );
            }
        }
    }

    /// Dictionary round-trip: `id_of` inverts `intern`/build assignment,
    /// `resolve` inverts `id_of`, and frozen ids are order-isomorphic to
    /// the `(item, tag)` key order.
    #[test]
    fn dictionary_round_trips_and_orders(dataset in arb_dataset()) {
        let dict = dataset.action_dictionary();
        let mut keys: Vec<u64> = Vec::new();
        for (_, profile) in dataset.iter() {
            for action in profile.iter() {
                let id = dict.id_of(action).expect("dataset actions are interned");
                prop_assert_eq!(dict.resolve(id), *action);
                keys.push(action_key(action));
            }
        }
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(dict.len(), keys.len());
        prop_assert_eq!(dict.frozen_len(), keys.len());
        // Order isomorphism over the frozen range: rank in key order == id.
        for (rank, &key) in keys.iter().enumerate() {
            let action = p3q_trace::key_action(key);
            prop_assert_eq!(dict.id_of(&action).map(|id| id.index()), Some(rank));
        }
    }

    /// Late interning appends to the tail without disturbing frozen ids,
    /// and stays idempotent.
    #[test]
    fn dictionary_tail_interning_is_stable(dataset in arb_dataset(), extra in prop::collection::vec((20u32..40, 0u32..8), 1..6)) {
        let mut dict = dataset.action_dictionary();
        let frozen = dict.frozen_len();
        let before: Vec<Option<p3q_trace::ActionId>> = dataset
            .iter()
            .flat_map(|(_, p)| p.iter().map(|a| dict.id_of(a)).collect::<Vec<_>>())
            .collect();
        let mut tail_ids = Vec::new();
        for (item, tag) in extra {
            let action = act(item, tag);
            let id = dict.intern(&action);
            prop_assert_eq!(dict.intern(&action), id, "interning must be idempotent");
            prop_assert_eq!(dict.resolve(id), action);
            tail_ids.push(id);
        }
        prop_assert_eq!(dict.frozen_len(), frozen, "the frozen range never moves");
        let after: Vec<Option<p3q_trace::ActionId>> = dataset
            .iter()
            .flat_map(|(_, p)| p.iter().map(|a| dict.id_of(a)).collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(before, after, "frozen ids must be undisturbed");
    }

    /// Packed profiles round-trip losslessly.
    #[test]
    fn packed_profiles_round_trip(dataset in arb_dataset()) {
        for (_, profile) in dataset.iter() {
            let packed = PackedProfile::pack(profile);
            prop_assert_eq!(packed.len(), profile.len());
            prop_assert_eq!(&packed.unpack(), profile);
        }
    }

    /// The memory report is internally consistent after arbitrary builds.
    #[test]
    fn memory_report_is_consistent(dataset in arb_dataset(), shards in 1usize..5) {
        let index = ActionIndex::build_with_shards(&dataset, shards);
        let memory = index.memory();
        prop_assert_eq!(memory.distinct_actions, index.distinct_actions());
        prop_assert_eq!(memory.postings, dataset.total_actions());
        prop_assert_eq!(
            memory.total_bytes,
            memory.dictionary_bytes + memory.directory_bytes + memory.postings_bytes
        );
        prop_assert_eq!(
            memory.csr_equivalent_bytes,
            memory.distinct_actions * 12 + memory.postings * 4
        );
    }
}

/// On a generated (paper-shaped) trace the compressed layout must beat the
/// uncompressed CSR equivalent by a wide margin — the point of the whole
/// refactor. Deterministic, not property-driven: one representative trace.
#[test]
fn compressed_layout_beats_csr_on_generated_traces() {
    let trace = TraceGenerator::new(TraceConfig::tiny(11)).generate();
    let index = ActionIndex::build(&trace.dataset);
    let memory = index.memory();
    assert!(
        memory.total_bytes * 10 <= memory.csr_equivalent_bytes * 8,
        "expected >= 20% reduction on a tiny trace, got {} vs {}",
        memory.total_bytes,
        memory.csr_equivalent_bytes
    );

    // The dictionary alone must at least halve the 8-byte key column.
    let dict = trace.dataset.action_dictionary();
    assert!(dict.heap_bytes() * 2 <= dict.uncompressed_bytes());

    // And the full pipeline still agrees with the uncompressed oracle.
    let oracle = UncompressedIndex::build(&trace.dataset);
    assert_eq!(index.distinct_actions(), oracle.distinct_actions());
    for (action, expected) in &oracle.postings {
        assert_eq!(&index.taggers_of(action), expected, "{action}");
    }
}
