//! Property tests pinning the counting-index similarity engine to a naive
//! O(n²) reference: `IdealNetworks::compute` must be byte-identical to
//! brute force on random traces — scores, ordering and tie-breaking
//! included — for every network size and worker-thread count. The
//! incremental path (`ActionIndex::apply_deltas` / `remove_user` +
//! `IdealNetworks::recompute_dirty`) is pinned the same way: after any
//! sequence of random profile-change batches and departures it must equal
//! a from-scratch `compute` over the mutated dataset, for every shard
//! layout and worker-thread count.

use proptest::prelude::*;

use p3q::baseline::IdealNetworks;
use p3q::similarity::{ActionIndex, SimilarityScratch};
use p3q_trace::{
    ChangeBatch, Dataset, ItemId, Profile, ProfileChange, TagId, TaggingAction, TraceConfig,
    TraceGenerator, UserId,
};

/// Brute force with no index at all: every ordered pair, one merge each.
/// Deliberately independent of both production implementations.
fn brute_force(dataset: &Dataset, network_size: usize) -> Vec<Vec<(u32, u64)>> {
    dataset
        .iter()
        .map(|(user, profile)| {
            let mut scored: Vec<(u32, u64)> = dataset
                .iter()
                .filter(|&(other, _)| other != user)
                .map(|(other, other_profile)| {
                    (other.0, profile.common_actions(other_profile) as u64)
                })
                .filter(|&(_, score)| score > 0)
                .collect();
            scored.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            scored.truncate(network_size);
            scored
        })
        .collect()
}

fn networks_as_vec(ideal: &IdealNetworks, num_users: usize) -> Vec<Vec<(u32, u64)>> {
    (0..num_users)
        .map(|idx| {
            ideal
                .network_of(p3q_trace::UserId::from_index(idx))
                .iter()
                .map(|&(u, s)| (u.0, s))
                .collect()
        })
        .collect()
}

/// A small random dataset: dense ids so collisions (shared actions, shared
/// items with different tags, full ties) are common.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec((0u32..12, 0u32..6), 0..30), 2..14).prop_map(
        |users| {
            let profiles: Vec<Profile> = users
                .into_iter()
                .map(|actions| {
                    Profile::from_actions(
                        actions
                            .into_iter()
                            .map(|(i, t)| TaggingAction::new(ItemId(i), TagId(t))),
                    )
                })
                .collect();
            Dataset::new(profiles, 12, 6)
        },
    )
}

proptest! {
    /// The counting engine equals brute force — including tie-breaking —
    /// on random datasets, for several network sizes.
    #[test]
    fn counting_engine_matches_brute_force(dataset in arb_dataset(), s in 1usize..8) {
        let expected = brute_force(&dataset, s);
        let got = networks_as_vec(&IdealNetworks::compute(&dataset, s), dataset.num_users());
        prop_assert_eq!(got, expected);
    }

    /// The counting engine equals the retained per-pair-merge reference
    /// implementation (the pre-index production code path).
    #[test]
    fn counting_engine_matches_reference_implementation(
        dataset in arb_dataset(),
        s in 1usize..8,
    ) {
        let reference = networks_as_vec(
            &IdealNetworks::compute_reference(&dataset, s),
            dataset.num_users(),
        );
        let got = networks_as_vec(&IdealNetworks::compute(&dataset, s), dataset.num_users());
        prop_assert_eq!(got, reference);
    }

    /// Thread count must never change the output — chunked parallelism with
    /// in-order reassembly is the determinism contract of the engine.
    #[test]
    fn output_is_identical_across_thread_counts(dataset in arb_dataset(), s in 1usize..6) {
        let single = networks_as_vec(
            &IdealNetworks::compute_with_threads(&dataset, s, 1),
            dataset.num_users(),
        );
        for threads in [2, 3, 8] {
            let multi = networks_as_vec(
                &IdealNetworks::compute_with_threads(&dataset, s, threads),
                dataset.num_users(),
            );
            prop_assert_eq!(&multi, &single, "threads = {}", threads);
        }
    }

    /// The raw accumulator agrees with the pairwise merge count for every
    /// (user, other) pair — a finer-grained check than the top-s networks.
    #[test]
    fn accumulator_counts_match_pairwise_merges(dataset in arb_dataset()) {
        let index = ActionIndex::build(&dataset);
        let mut scratch = SimilarityScratch::new(dataset.num_users());
        for (user, profile) in dataset.iter() {
            index.accumulate(profile, user, &mut scratch);
            let top = index.collect_top(dataset.num_users(), &mut scratch);
            for (other, other_profile) in dataset.iter() {
                let expected = if other == user {
                    0
                } else {
                    profile.common_actions(other_profile) as u64
                };
                let got = top
                    .iter()
                    .find(|&&(u, _)| u == other)
                    .map(|&(_, s)| s)
                    .unwrap_or(0);
                prop_assert_eq!(got, expected, "user {} vs {}", user, other);
            }
        }
    }
}

/// Raw material for one random dynamics step: either a profile-change batch
/// (user selectors + new actions) or the departure of one user.
type RawBatch = Vec<(usize, Vec<(u32, u32)>)>;

/// A sequence of 1–3 random change batches. User indices are selectors to be
/// reduced modulo the population; actions use the same dense id space as
/// `arb_dataset` so deltas frequently duplicate existing actions (exercising
/// the set semantics of `apply_deltas`).
fn arb_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    prop::collection::vec(
        prop::collection::vec(
            (0usize..64, prop::collection::vec((0u32..12, 0u32..6), 0..8)),
            1..5,
        ),
        1..4,
    )
}

/// Reduces a raw batch to a `ChangeBatch` with at most one entry per user.
fn change_batch(raw: &RawBatch, num_users: usize) -> ChangeBatch {
    let mut changes: Vec<ProfileChange> = Vec::new();
    for &(user_sel, ref actions) in raw {
        let user = UserId::from_index(user_sel % num_users);
        let new_actions: Vec<TaggingAction> = actions
            .iter()
            .map(|&(i, t)| TaggingAction::new(ItemId(i), TagId(t)))
            .collect();
        match changes.iter_mut().find(|c| c.user == user) {
            Some(change) => change.new_actions.extend(new_actions),
            None => changes.push(ProfileChange { user, new_actions }),
        }
    }
    ChangeBatch { changes }
}

proptest! {
    /// The incremental path — patch the index, re-score only the dirty
    /// users — equals a from-scratch `compute` over the mutated dataset
    /// after every batch, for several shard layouts.
    #[test]
    fn incremental_recompute_matches_from_scratch_oracle(
        dataset in arb_dataset(),
        batches in arb_batches(),
        s in 1usize..6,
        shards in 1usize..5,
    ) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build_with_shards(&dataset, shards);
        let mut ideal = IdealNetworks::compute(&dataset, s);
        for (step, raw) in batches.iter().enumerate() {
            let batch = change_batch(raw, dataset.num_users());
            batch.apply(&mut dataset);
            ideal.apply_change_batch(&dataset, &mut index, &batch);
            let oracle = IdealNetworks::compute(&dataset, s);
            prop_assert_eq!(
                networks_as_vec(&ideal, dataset.num_users()),
                networks_as_vec(&oracle, dataset.num_users()),
                "diverged at step {} ({} shards)", step, shards
            );
        }
    }

    /// Churn: removing users from the index (and emptying their profiles)
    /// equals a from-scratch `compute` over the post-departure dataset,
    /// with departures and change batches interleaved.
    #[test]
    fn incremental_churn_matches_from_scratch_oracle(
        dataset in arb_dataset(),
        raw in arb_batches(),
        departures in prop::collection::vec(0usize..64, 1..5),
        s in 1usize..6,
        shards in 1usize..5,
    ) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build_with_shards(&dataset, shards);
        let mut ideal = IdealNetworks::compute(&dataset, s);

        // One change batch first, so departures hit freshly patched shards.
        let batch = change_batch(&raw[0], dataset.num_users());
        batch.apply(&mut dataset);
        ideal.apply_change_batch(&dataset, &mut index, &batch);

        let mut departed: Vec<UserId> = departures
            .iter()
            .map(|&sel| UserId::from_index(sel % dataset.num_users()))
            .collect();
        departed.sort_unstable();
        departed.dedup();
        let old_profiles: Vec<(UserId, Profile)> = departed
            .iter()
            .map(|&u| (u, dataset.profile(u).clone()))
            .collect();
        for &u in &departed {
            *dataset.profile_mut(u) = Profile::new();
        }
        ideal.apply_departures(
            &dataset,
            &mut index,
            old_profiles.iter().map(|(u, p)| (*u, p)),
        );

        let oracle = IdealNetworks::compute(&dataset, s);
        prop_assert_eq!(
            networks_as_vec(&ideal, dataset.num_users()),
            networks_as_vec(&oracle, dataset.num_users())
        );
        for &u in &departed {
            prop_assert!(ideal.network_of(u).is_empty());
        }
    }

    /// The incremental path shares the determinism contract of the full
    /// computation: the worker-thread count must never change the output.
    #[test]
    fn incremental_recompute_is_thread_count_independent(
        dataset in arb_dataset(),
        raw in arb_batches(),
        s in 1usize..6,
    ) {
        let mut single_dataset = dataset.clone();
        let mut single_index = ActionIndex::build(&single_dataset);
        let mut single = IdealNetworks::compute_with_threads(&single_dataset, s, 1);
        let mut dirty_per_step = Vec::new();
        for raw_batch in &raw {
            let batch = change_batch(raw_batch, single_dataset.num_users());
            batch.apply(&mut single_dataset);
            let dirty = single.apply_change_batch_with_threads(
                &single_dataset,
                &mut single_index,
                &batch,
                1,
            );
            dirty_per_step.push(dirty);
        }
        for threads in [2, 3, 8] {
            let mut multi_dataset = dataset.clone();
            let mut multi_index = ActionIndex::build(&multi_dataset);
            let mut multi = IdealNetworks::compute_with_threads(&multi_dataset, s, threads);
            for (raw_batch, expected_dirty) in raw.iter().zip(&dirty_per_step) {
                let batch = change_batch(raw_batch, multi_dataset.num_users());
                batch.apply(&mut multi_dataset);
                let dirty = multi.apply_change_batch_with_threads(
                    &multi_dataset,
                    &mut multi_index,
                    &batch,
                    threads,
                );
                prop_assert_eq!(&dirty, expected_dirty, "dirty sets must be deterministic");
            }
            prop_assert_eq!(
                networks_as_vec(&multi, dataset.num_users()),
                networks_as_vec(&single, dataset.num_users()),
                "threads = {}", threads
            );
        }
    }
}

/// One structured (non-random) cross-check on a generated trace, where the
/// community structure produces realistic overlap patterns.
#[test]
fn counting_engine_matches_reference_on_generated_trace() {
    let trace = TraceGenerator::new(TraceConfig::tiny(11)).generate();
    for s in [1, 3, 20] {
        let fast = IdealNetworks::compute(&trace.dataset, s);
        let reference = IdealNetworks::compute_reference(&trace.dataset, s);
        assert_eq!(
            networks_as_vec(&fast, trace.dataset.num_users()),
            networks_as_vec(&reference, trace.dataset.num_users()),
            "network size {s}"
        );
    }
}
