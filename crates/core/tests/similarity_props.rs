//! Property tests pinning the counting-index similarity engine to a naive
//! O(n²) reference: `IdealNetworks::compute` must be byte-identical to
//! brute force on random traces — scores, ordering and tie-breaking
//! included — for every network size and worker-thread count.

use proptest::prelude::*;

use p3q::baseline::IdealNetworks;
use p3q::similarity::{ActionIndex, SimilarityScratch};
use p3q_trace::{Dataset, ItemId, Profile, TagId, TaggingAction, TraceConfig, TraceGenerator};

/// Brute force with no index at all: every ordered pair, one merge each.
/// Deliberately independent of both production implementations.
fn brute_force(dataset: &Dataset, network_size: usize) -> Vec<Vec<(u32, u64)>> {
    dataset
        .iter()
        .map(|(user, profile)| {
            let mut scored: Vec<(u32, u64)> = dataset
                .iter()
                .filter(|&(other, _)| other != user)
                .map(|(other, other_profile)| {
                    (other.0, profile.common_actions(other_profile) as u64)
                })
                .filter(|&(_, score)| score > 0)
                .collect();
            scored.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            scored.truncate(network_size);
            scored
        })
        .collect()
}

fn networks_as_vec(ideal: &IdealNetworks, num_users: usize) -> Vec<Vec<(u32, u64)>> {
    (0..num_users)
        .map(|idx| {
            ideal
                .network_of(p3q_trace::UserId::from_index(idx))
                .iter()
                .map(|&(u, s)| (u.0, s))
                .collect()
        })
        .collect()
}

/// A small random dataset: dense ids so collisions (shared actions, shared
/// items with different tags, full ties) are common.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec((0u32..12, 0u32..6), 0..30), 2..14).prop_map(
        |users| {
            let profiles: Vec<Profile> = users
                .into_iter()
                .map(|actions| {
                    Profile::from_actions(
                        actions
                            .into_iter()
                            .map(|(i, t)| TaggingAction::new(ItemId(i), TagId(t))),
                    )
                })
                .collect();
            Dataset::new(profiles, 12, 6)
        },
    )
}

proptest! {
    /// The counting engine equals brute force — including tie-breaking —
    /// on random datasets, for several network sizes.
    #[test]
    fn counting_engine_matches_brute_force(dataset in arb_dataset(), s in 1usize..8) {
        let expected = brute_force(&dataset, s);
        let got = networks_as_vec(&IdealNetworks::compute(&dataset, s), dataset.num_users());
        prop_assert_eq!(got, expected);
    }

    /// The counting engine equals the retained per-pair-merge reference
    /// implementation (the pre-index production code path).
    #[test]
    fn counting_engine_matches_reference_implementation(
        dataset in arb_dataset(),
        s in 1usize..8,
    ) {
        let reference = networks_as_vec(
            &IdealNetworks::compute_reference(&dataset, s),
            dataset.num_users(),
        );
        let got = networks_as_vec(&IdealNetworks::compute(&dataset, s), dataset.num_users());
        prop_assert_eq!(got, reference);
    }

    /// Thread count must never change the output — chunked parallelism with
    /// in-order reassembly is the determinism contract of the engine.
    #[test]
    fn output_is_identical_across_thread_counts(dataset in arb_dataset(), s in 1usize..6) {
        let single = networks_as_vec(
            &IdealNetworks::compute_with_threads(&dataset, s, 1),
            dataset.num_users(),
        );
        for threads in [2, 3, 8] {
            let multi = networks_as_vec(
                &IdealNetworks::compute_with_threads(&dataset, s, threads),
                dataset.num_users(),
            );
            prop_assert_eq!(&multi, &single, "threads = {}", threads);
        }
    }

    /// The raw accumulator agrees with the pairwise merge count for every
    /// (user, other) pair — a finer-grained check than the top-s networks.
    #[test]
    fn accumulator_counts_match_pairwise_merges(dataset in arb_dataset()) {
        let index = ActionIndex::build(&dataset);
        let mut scratch = SimilarityScratch::new(dataset.num_users());
        for (user, profile) in dataset.iter() {
            index.accumulate(profile, user, &mut scratch);
            let top = index.collect_top(dataset.num_users(), &mut scratch);
            for (other, other_profile) in dataset.iter() {
                let expected = if other == user {
                    0
                } else {
                    profile.common_actions(other_profile) as u64
                };
                let got = top
                    .iter()
                    .find(|&&(u, _)| u == other)
                    .map(|&(_, s)| s)
                    .unwrap_or(0);
                prop_assert_eq!(got, expected, "user {} vs {}", user, other);
            }
        }
    }
}

/// One structured (non-random) cross-check on a generated trace, where the
/// community structure produces realistic overlap patterns.
#[test]
fn counting_engine_matches_reference_on_generated_trace() {
    let trace = TraceGenerator::new(TraceConfig::tiny(11)).generate();
    for s in [1, 3, 20] {
        let fast = IdealNetworks::compute(&trace.dataset, s);
        let reference = IdealNetworks::compute_reference(&trace.dataset, s);
        assert_eq!(
            networks_as_vec(&fast, trace.dataset.num_users()),
            networks_as_vec(&reference, trace.dataset.num_users()),
            "network size {s}"
        );
    }
}
