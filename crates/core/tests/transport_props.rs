//! Property tests pinning the message-passing transport runtime
//! (`p3q_transport::TransportRuntime`) to its oracle, the deterministic
//! simulator:
//!
//! * under the **canonical delivery schedule** a transport run is
//!   **byte-identical** to `Simulator::drive` for the same seed — node
//!   states (via the `Fingerprint` chain), every bandwidth counter and the
//!   run reports all agree, for both protocols (lazy maintenance, eager
//!   query processing), across shard layouts of 1 / 3 / 8 actors;
//! * the equality survives a **composite fault mix** (loss + delay +
//!   duplication + crash/restart) reinterpreted as transport faults, with
//!   identical fault schedules and statistics;
//! * a **seeded schedule is a pure function of `(seed, schedule)`** —
//!   replaying it reproduces the run bit for bit even under faults;
//! * **actor crash/restart mid-run is invisible**: stopping, joining and
//!   respawning shard actors between cycles leaves the run byte-identical
//!   to the simulator;
//! * the end-to-end **recall** of a query gossiped over the transport
//!   equals the simulator's (and the centralized reference's, where the
//!   ideal-network run achieves it).
//!
//! Same shape as `fault_props.rs`: random scenarios via proptest and
//! deliberately thorough state fingerprints instead of spot checks.

use proptest::prelude::*;
use rand::SeedableRng;

use p3q::prelude::*;
use p3q_transport::{DeliverySchedule, TransportRuntime};

/// Shard layouts exercised everywhere: the degenerate single actor, an
/// uneven split and more actors than the CI host has cores.
const ACTOR_COUNTS: [usize; 3] = [1, 3, 8];

/// A stable digest of a full run state: cycle, alive flags, every node
/// (via its [`Fingerprint`] impl) and every bandwidth counter.
fn state_fingerprint(
    cycle: u64,
    alive: impl Iterator<Item = bool>,
    nodes: &[&P3qNode],
    bandwidth: &p3q_sim::BandwidthRecorder,
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(cycle);
    for flag in alive {
        h.write_u64(flag as u64);
    }
    h.write_u64(fingerprint_chain(nodes.iter().copied()));
    h.write_u64(bandwidth.totals().0);
    h.write_u64(bandwidth.totals().1);
    for category in bandwidth.categories() {
        h.write_all(category.bytes().map(u64::from));
        h.write_u64(bandwidth.category_bytes(category));
        for idx in 0..nodes.len() {
            h.write_u64(bandwidth.node_bytes(idx, category));
        }
    }
    h.finish()
}

fn sim_state(sim: &Simulator<P3qNode>) -> u64 {
    let nodes: Vec<&P3qNode> = sim.nodes().iter().collect();
    state_fingerprint(
        sim.cycle(),
        (0..sim.num_nodes()).map(|idx| sim.is_alive(idx)),
        &nodes,
        &sim.bandwidth,
    )
}

fn transport_state(rt: &TransportRuntime<P3qNode>) -> u64 {
    let nodes: Vec<&P3qNode> = rt.nodes().collect();
    state_fingerprint(
        rt.cycle(),
        (0..rt.num_nodes()).map(|idx| rt.membership().is_alive(idx)),
        &nodes,
        &rt.bandwidth,
    )
}

struct World {
    trace: p3q_trace::SyntheticTrace,
    cfg: P3qConfig,
    ideal: IdealNetworks,
    queries: Vec<Query>,
}

fn world(seed: u64) -> World {
    let mut trace_cfg = TraceConfig::tiny(seed);
    trace_cfg.num_users = 60;
    let trace = TraceGenerator::new(trace_cfg).generate();
    let cfg = P3qConfig::tiny();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let queries: Vec<Query> = QueryGenerator::new(seed ^ 0xFA17)
        .one_query_per_user(&trace.dataset)
        .into_iter()
        .filter(|q| !ideal.network_of(q.querier).is_empty())
        .take(5)
        .collect();
    World {
        trace,
        cfg,
        ideal,
        queries,
    }
}

fn lazy_sim(world: &World, seed: u64) -> Simulator<P3qNode> {
    let mut sim = build_simulator(
        &world.trace.dataset,
        &world.cfg,
        &StorageDistribution::Uniform(300),
        seed,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &world.cfg, &mut rng);
    sim
}

fn eager_sim(world: &World, cfg: &P3qConfig, seed: u64) -> Simulator<P3qNode> {
    let budgets = vec![1usize; world.trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, seed);
    init_ideal_networks(&mut sim, &world.ideal);
    for (i, query) in world.queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim
}

/// A composite fault mix exercising every fault kind at once.
fn composite_faults(fault_seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::lossy(0.2, fault_seed);
    cfg.duplicate_rate = 0.1;
    cfg.crash_rate = 0.05;
    cfg.downtime_cycles = 1;
    cfg.validate();
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// ISSUE acceptance: under the canonical schedule a transport run is
    /// byte-identical to the simulator for the same seed, for both
    /// protocols and every shard layout.
    #[test]
    fn canonical_transport_matches_the_simulator_across_layouts(
        seed in 0u64..1000,
    ) {
        let w = world(seed);
        let cfg = w.cfg.clone();

        // Lazy mode: 4 maintenance cycles.
        let mut reference = lazy_sim(&w, seed);
        reference.drive(&cfg.lazy(), RunOptions::cycles(4), |_, _| {});
        for actors in ACTOR_COUNTS {
            let mut rt =
                TransportRuntime::from_simulator(&mut lazy_sim(&w, seed), actors, DeliverySchedule::canonical());
            rt.drive(&cfg.lazy(), RunOptions::cycles(4));
            prop_assert_eq!(
                sim_state(&reference),
                transport_state(&rt),
                "lazy transport run diverged (seed {}, actors {})",
                seed, actors
            );
        }

        // Eager mode: 6 query cycles, comparing the per-cycle reports too.
        let mut reference = eager_sim(&w, &cfg, seed);
        let mut exchanges = Vec::new();
        for _ in 0..6 {
            exchanges.push(
                reference
                    .drive(&cfg.eager(), RunOptions::cycles(1), |_, _| {})
                    .exchanges(),
            );
        }
        for actors in ACTOR_COUNTS {
            let mut rt = TransportRuntime::from_simulator(
                &mut eager_sim(&w, &cfg, seed),
                actors,
                DeliverySchedule::canonical(),
            );
            let mut rt_exchanges = Vec::new();
            for _ in 0..6 {
                rt_exchanges.push(rt.drive(&cfg.eager(), RunOptions::cycles(1)).exchanges());
            }
            prop_assert_eq!(&exchanges, &rt_exchanges, "exchange counts diverged");
            prop_assert_eq!(
                sim_state(&reference),
                transport_state(&rt),
                "eager transport run diverged (seed {}, actors {})",
                seed, actors
            );
        }
    }

    /// The byte-equality survives a composite fault mix — drops, delays,
    /// duplicates and node crash/restarts, reinterpreted as transport
    /// faults — with identical fault schedules and statistics.
    #[test]
    fn faulted_transport_matches_the_simulator(
        seed in 0u64..1000,
    ) {
        let w = world(seed ^ 0x0FF);
        let cfg = w.cfg.clone().with_fault_tolerance(20, 4, 10);
        let fault_cfg = composite_faults(seed ^ 0xFA01);

        // Lazy mode.
        let mut reference = lazy_sim(&w, seed);
        let mut ref_faults = FaultPlan::new(fault_cfg);
        reference.drive(
            &cfg.lazy(),
            RunOptions::cycles(6).faulted(&mut ref_faults),
            |_, _| {},
        );
        for actors in ACTOR_COUNTS {
            let mut rt =
                TransportRuntime::from_simulator(&mut lazy_sim(&w, seed), actors, DeliverySchedule::canonical());
            let mut rt_faults = FaultPlan::new(fault_cfg);
            rt.drive(&cfg.lazy(), RunOptions::cycles(6).faulted(&mut rt_faults));
            prop_assert_eq!(ref_faults.fingerprint(), rt_faults.fingerprint());
            prop_assert_eq!(ref_faults.stats(), rt_faults.stats());
            prop_assert_eq!(
                sim_state(&reference),
                transport_state(&rt),
                "faulted lazy transport run diverged (seed {}, actors {})",
                seed, actors
            );
        }

        // Eager mode.
        let mut reference = eager_sim(&w, &cfg, seed);
        let mut ref_faults = FaultPlan::new(fault_cfg);
        reference.drive(
            &cfg.eager(),
            RunOptions::cycles(8).faulted(&mut ref_faults),
            |_, _| {},
        );
        for actors in ACTOR_COUNTS {
            let mut rt = TransportRuntime::from_simulator(
                &mut eager_sim(&w, &cfg, seed),
                actors,
                DeliverySchedule::canonical(),
            );
            let mut rt_faults = FaultPlan::new(fault_cfg);
            rt.drive(&cfg.eager(), RunOptions::cycles(8).faulted(&mut rt_faults));
            prop_assert_eq!(ref_faults.fingerprint(), rt_faults.fingerprint());
            prop_assert_eq!(ref_faults.stats(), rt_faults.stats());
            prop_assert_eq!(
                sim_state(&reference),
                transport_state(&rt),
                "faulted eager transport run diverged (seed {}, actors {})",
                seed, actors
            );
        }
    }

    /// A seeded delivery schedule is a pure function of `(seed, schedule)`:
    /// replaying the same pair reproduces the run bit for bit, with and
    /// without faults. (Only the canonical schedule additionally equals the
    /// simulator — a seeded one permutes the plan gather order, which the
    /// fault filter and batcher legitimately observe.)
    #[test]
    fn seeded_schedules_are_deterministic_in_seed_and_schedule(
        seed in 0u64..1000,
        schedule_seed in 0u64..1000,
        faulted in 0u32..2,
    ) {
        let w = world(seed);
        let cfg = w.cfg.clone().with_fault_tolerance(20, 4, 10);
        let faulted = faulted == 1;

        let run = |schedule: DeliverySchedule| {
            let mut rt = TransportRuntime::from_simulator(
                &mut eager_sim(&w, &cfg, seed),
                3,
                schedule,
            );
            if faulted {
                let mut faults = FaultPlan::new(composite_faults(seed ^ 0xFA01));
                rt.drive(&cfg.eager(), RunOptions::cycles(6).faulted(&mut faults));
                (transport_state(&rt), Some((faults.fingerprint(), faults.stats())))
            } else {
                rt.drive(&cfg.eager(), RunOptions::cycles(6));
                (transport_state(&rt), None)
            }
        };

        let a = run(DeliverySchedule::seeded(schedule_seed));
        let b = run(DeliverySchedule::seeded(schedule_seed));
        prop_assert_eq!(a, b, "same (seed, schedule) gave different runs");
    }

    /// Actor crash/restart mid-run is a pure infrastructure fault: shard
    /// actors stopped, joined and respawned between cycles carry their
    /// state and accounting across the hop, leaving the run byte-identical
    /// to the simulator.
    #[test]
    fn actor_restarts_mid_run_leave_the_run_byte_identical(
        seed in 0u64..1000,
    ) {
        let w = world(seed);
        let cfg = w.cfg.clone();

        let mut reference = eager_sim(&w, &cfg, seed);
        reference.drive(&cfg.eager(), RunOptions::cycles(5), |_, _| {});

        let mut rt = TransportRuntime::from_simulator(
            &mut eager_sim(&w, &cfg, seed),
            4,
            DeliverySchedule::canonical(),
        );
        // Restart every actor at least once, two of them on the same cycle.
        rt.schedule_actor_restart(1, 0);
        rt.schedule_actor_restart(1, 3);
        rt.schedule_actor_restart(2, 2);
        rt.schedule_actor_restart(4, 1);
        rt.drive(&cfg.eager(), RunOptions::cycles(5));
        prop_assert_eq!(
            sim_state(&reference),
            transport_state(&rt),
            "actor restarts leaked into the run (seed {})",
            seed
        );
    }
}

/// End-to-end acceptance: a query gossiped to completion over the transport
/// reaches exactly the simulator's recall — and, with ideal networks and
/// enough budget, the centralized reference's.
#[test]
fn transport_recall_matches_the_simulator() {
    let trace = TraceGenerator::new(TraceConfig::tiny(42)).generate();
    let cfg = P3qConfig::tiny();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let budgets = vec![2usize; trace.dataset.num_users()];

    let build = || {
        let mut sim = build_simulator_with_budgets(&trace.dataset, &cfg, &budgets, 7);
        init_ideal_networks(&mut sim, &ideal);
        let query = QueryGenerator::new(1)
            .one_query_per_user(&trace.dataset)
            .into_iter()
            .find(|q| !ideal.network_of(q.querier).is_empty())
            .unwrap();
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(0),
            query.clone(),
            &cfg,
        );
        (sim, query)
    };

    let recall_of = |node: &P3qNode, query: &Query| {
        let mut node = node.clone();
        let state = node.querier_states.get_mut(&QueryId(0)).unwrap();
        let items: Vec<_> = state
            .nra
            .topk_exhaustive(cfg.top_k)
            .iter()
            .map(|r| r.item)
            .collect();
        let reference = centralized_topk(&trace.dataset, &ideal, query, cfg.top_k);
        recall_at_k(&items, &reference)
    };

    let (mut reference, query) = build();
    let ref_report = reference.drive(&cfg.eager(), RunOptions::until_complete(50), |_, _| {});
    let ref_recall = recall_of(reference.node(query.querier.index()), &query);
    assert_eq!(
        ref_recall, 1.0,
        "the ideal-network run must reach full recall"
    );

    for actors in ACTOR_COUNTS {
        let (mut seeded, _) = build();
        let mut rt =
            TransportRuntime::from_simulator(&mut seeded, actors, DeliverySchedule::canonical());
        let rt_report = rt.drive(&cfg.eager(), RunOptions::until_complete(50));
        assert_eq!(
            ref_report, rt_report,
            "run reports diverged (actors {actors})"
        );
        let rt_recall = recall_of(rt.node(query.querier.index()), &query);
        assert_eq!(ref_recall, rt_recall, "recall diverged (actors {actors})");
        assert_eq!(
            sim_state(&reference),
            transport_state(&rt),
            "end state diverged (actors {actors})"
        );
    }
}
