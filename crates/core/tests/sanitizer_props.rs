//! Aliasing-sanitizer integration suite (ISSUE 7).
//!
//! Debug builds arm the `NodeStore` commit-batch ledger: every mutable
//! borrow inside a commit batch is recorded and a same-batch re-borrow
//! panics. These tests drive the *real* protocols — a faulted 1k-user
//! lazy+eager run — through the armed engine across `P3Q_THREADS ∈
//! {1, 3, 8}`: completing without a sanitizer panic is the assertion that
//! the conflict-free batching really does hand out disjoint `&mut`s under
//! composite faults (drops, delays, duplicates, crash/restart). The
//! deliberately-overlapping counterpart tests live next to the ledger in
//! `p3q_sim::store` (they need `begin_commit_batch` mid-sequence, not a
//! whole protocol).
//!
//! The runs double as a determinism check: all three thread counts must
//! produce identical bandwidth totals.

use rand::SeedableRng;

use p3q::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 3, 8];
const NUM_USERS: usize = 1000;
const SEED: u64 = 0x5A17_1234;

struct World {
    trace: p3q_trace::SyntheticTrace,
    cfg: P3qConfig,
    ideal: IdealNetworks,
    queries: Vec<Query>,
}

fn world() -> World {
    let mut trace_cfg = TraceConfig::tiny(SEED);
    trace_cfg.num_users = NUM_USERS;
    let trace = TraceGenerator::new(trace_cfg).generate();
    let cfg = P3qConfig::tiny();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let queries: Vec<Query> = QueryGenerator::new(SEED ^ 0xFA17)
        .one_query_per_user(&trace.dataset)
        .into_iter()
        .filter(|q| !ideal.network_of(q.querier).is_empty())
        .take(20)
        .collect();
    World {
        trace,
        cfg,
        ideal,
        queries,
    }
}

/// A composite fault mix exercising every fault kind at once — the widest
/// variety of batch shapes (duplicates land in extra batches, delays
/// re-inject plans in later cycles, crash/restart churns membership).
fn composite_faults(fault_seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::lossy(0.2, fault_seed);
    cfg.duplicate_rate = 0.15;
    cfg.delay_rate = 0.1;
    cfg.max_delay_cycles = 2;
    cfg.crash_rate = 0.05;
    cfg.downtime_cycles = 1;
    cfg.validate();
    cfg
}

#[test]
fn faulted_1k_user_lazy_run_is_clean_under_the_sanitizer() {
    let w = world();
    let mut totals: Vec<(u64, u64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let mut sim = build_simulator(
            &w.trace.dataset,
            &w.cfg,
            &StorageDistribution::Uniform(300),
            SEED,
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(SEED ^ 0xB007);
        bootstrap_random_views(&mut sim, &w.cfg, &mut rng);
        let mut faults: FaultPlan<LazyStep> = FaultPlan::new(composite_faults(SEED ^ 0xFA));
        sim.drive(
            &w.cfg.lazy(),
            RunOptions::cycles(4).threads(threads).faulted(&mut faults),
            |_, _| {},
        );
        assert!(
            sim.bandwidth.totals().1 > 0,
            "a 1k-user faulted lazy run must commit exchanges (threads = {threads})"
        );
        totals.push(sim.bandwidth.totals());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "thread counts diverged: {totals:?}"
    );
}

#[test]
fn faulted_1k_user_eager_run_is_clean_under_the_sanitizer() {
    let w = world();
    let budgets = vec![1usize; w.trace.dataset.num_users()];
    let mut totals: Vec<(u64, u64)> = Vec::new();
    for threads in THREAD_COUNTS {
        let mut sim = build_simulator_with_budgets(&w.trace.dataset, &w.cfg, &budgets, SEED);
        init_ideal_networks(&mut sim, &w.ideal);
        for (i, query) in w.queries.iter().enumerate() {
            issue_query(
                &mut sim,
                query.querier.index(),
                QueryId(i as u64),
                query.clone(),
                &w.cfg,
            );
        }
        let mut faults: FaultPlan<EagerTask> = FaultPlan::new(composite_faults(SEED ^ 0xEA));
        sim.drive(
            &w.cfg.eager(),
            RunOptions::cycles(6).threads(threads).faulted(&mut faults),
            |_, _| {},
        );
        assert!(
            sim.bandwidth.totals().1 > 0,
            "a 1k-user faulted eager run must commit exchanges (threads = {threads})"
        );
        totals.push(sim.bandwidth.totals());
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "thread counts diverged: {totals:?}"
    );
}
