//! Property tests pinning the parallel plan/commit cycle engine to its
//! sequential oracle: lazy and eager drives executed with *any*
//! worker-thread count must leave the whole simulation — personal
//! networks, random views, stored profiles, querier states, task shares
//! and every bandwidth counter — byte-identical to the oracle mode
//! (`RunOptions::oracle`), including under profile dynamics, churned
//! membership and mid-run departures.
//!
//! Same shape as `similarity_props.rs`: random scenarios via proptest, a
//! deliberately thorough fingerprint instead of spot checks.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;

use p3q::prelude::*;

/// A stable digest of one node's complete protocol state. Everything that
/// could diverge between two runs is folded in; iteration over hash-based
/// containers is sorted first so the fingerprint itself is deterministic.
fn node_fingerprint(node: &P3qNode, h: &mut DefaultHasher) {
    node.id.hash(h);
    node.profile_version().hash(h);
    node.profile().actions().hash(h);
    node.storage_budget().hash(h);

    for entry in node.personal_network.iter() {
        entry.peer.hash(h);
        entry.score.hash(h);
        entry.staleness.hash(h);
        entry.meta.digest_version.hash(h);
        entry.meta.profile_version.hash(h);
        match &entry.meta.profile {
            Some(profile) => profile.actions().hash(h),
            None => u64::MAX.hash(h),
        }
    }
    for entry in node.random_view.iter() {
        entry.peer.hash(h);
        entry.age.hash(h);
        entry.meta.version.hash(h);
    }

    let mut query_ids: Vec<QueryId> = node.querier_states.keys().copied().collect();
    query_ids.sort_unstable();
    for qid in query_ids {
        let state = &node.querier_states[&qid];
        qid.hash(h);
        state.remaining.hash(h);
        state.target_profiles.hash(h);
        let mut used: Vec<UserId> = state.used_profiles.iter().copied().collect();
        used.sort_unstable();
        used.hash(h);
        let mut reached: Vec<UserId> = state.reached_users.iter().copied().collect();
        reached.sort_unstable();
        reached.hash(h);
        state.started_cycle.hash(h);
        state.completed_cycle.hash(h);
        state.nra.list_count().hash(h);
        state.traffic.partial_results.hash(h);
        state.traffic.returned_remaining.hash(h);
        state.traffic.forwarded_remaining.hash(h);
        state.traffic.partial_result_messages.hash(h);
        state.traffic.users_reached.hash(h);
    }
    let mut task_ids: Vec<QueryId> = node.tasks.keys().copied().collect();
    task_ids.sort_unstable();
    for qid in task_ids {
        let task = &node.tasks[&qid];
        qid.hash(h);
        task.querier.hash(h);
        task.remaining.hash(h);
    }
}

/// Fingerprint of the whole simulation: every node plus every bandwidth
/// counter (per node, per category, per cycle).
fn sim_fingerprint(sim: &Simulator<P3qNode>) -> u64 {
    let mut h = DefaultHasher::new();
    sim.cycle().hash(&mut h);
    sim.membership().alive_count().hash(&mut h);
    for idx in 0..sim.num_nodes() {
        sim.is_alive(idx).hash(&mut h);
        node_fingerprint(sim.node(idx), &mut h);
    }
    sim.bandwidth.totals().hash(&mut h);
    for category in sim.bandwidth.categories() {
        category.hash(&mut h);
        sim.bandwidth.category_bytes(category).hash(&mut h);
        sim.bandwidth.category_messages(category).hash(&mut h);
        for idx in 0..sim.num_nodes() {
            sim.bandwidth.node_bytes(idx, category).hash(&mut h);
        }
    }
    for cycle in 0..=sim.cycle() {
        sim.bandwidth.cycle_bytes(cycle).hash(&mut h);
    }
    h.finish()
}

struct World {
    trace: p3q_trace::SyntheticTrace,
    cfg: P3qConfig,
    ideal: IdealNetworks,
    queries: Vec<Query>,
}

fn world(seed: u64) -> World {
    let mut trace_cfg = TraceConfig::tiny(seed);
    trace_cfg.num_users = 80;
    let trace = TraceGenerator::new(trace_cfg).generate();
    let cfg = P3qConfig::tiny();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let queries: Vec<Query> = QueryGenerator::new(seed ^ 0xABCD)
        .one_query_per_user(&trace.dataset)
        .into_iter()
        .filter(|q| !ideal.network_of(q.querier).is_empty())
        .take(6)
        .collect();
    World {
        trace,
        cfg,
        ideal,
        queries,
    }
}

fn lazy_sim(world: &World, seed: u64) -> Simulator<P3qNode> {
    let mut sim = build_simulator(
        &world.trace.dataset,
        &world.cfg,
        &StorageDistribution::Uniform(300),
        seed,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &world.cfg, &mut rng);
    sim
}

fn eager_sim(world: &World, seed: u64) -> Simulator<P3qNode> {
    let budgets = vec![1usize; world.trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&world.trace.dataset, &world.cfg, &budgets, seed);
    init_ideal_networks(&mut sim, &world.ideal);
    for (i, query) in world.queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            &world.cfg,
        );
    }
    sim
}

use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Lazy mode: a run interleaving profile dynamics and a mass departure
    /// is byte-identical between the parallel engine (arbitrary thread
    /// count) and the sequential reference.
    #[test]
    fn lazy_parallel_equals_reference_under_dynamics_and_churn(
        seed in 0u64..1000,
        threads in 1usize..9,
        departure in 0u32..4,
    ) {
        let w = world(seed);
        let batch = DynamicsGenerator::new(DynamicsConfig::paper_day(seed ^ 0xDA7))
            .generate(&w.trace);
        let fraction = departure as f64 / 10.0;

        let mut reference = lazy_sim(&w, seed);
        let mut parallel = lazy_sim(&w, seed);
        for phase in 0..3 {
            for _ in 0..2 {
                reference.drive(&w.cfg.lazy(), RunOptions::cycles(1).oracle(), |_, _| {});
                parallel.drive(&w.cfg.lazy(), RunOptions::cycles(1).threads(threads), |_, _| {});
            }
            match phase {
                // Mid-run profile dynamics: owners change, copies go stale.
                0 => {
                    apply_profile_changes(&mut reference, &batch);
                    apply_profile_changes(&mut parallel, &batch);
                }
                // Mid-run departures (same RNG stream on both sides, so the
                // same nodes leave).
                1 => {
                    let a = reference.mass_departure(fraction);
                    let b = parallel.mass_departure(fraction);
                    prop_assert_eq!(a, b, "divergent departures mean divergent RNG streams");
                }
                _ => {}
            }
        }
        prop_assert_eq!(
            sim_fingerprint(&reference),
            sim_fingerprint(&parallel),
            "lazy run diverged (seed {}, threads {}, departure {}%)",
            seed, threads, departure * 10
        );
    }

    /// Eager mode: concurrent queries with mid-run departures are
    /// byte-identical between the parallel engine and the reference —
    /// including the per-query traffic bills and completion cycles.
    #[test]
    fn eager_parallel_equals_reference_with_mid_run_departures(
        seed in 0u64..1000,
        threads in 1usize..9,
        departure in 0u32..5,
    ) {
        let w = world(seed ^ 0x5A5A);
        let fraction = departure as f64 / 10.0;

        let mut reference = eager_sim(&w, seed);
        let mut parallel = eager_sim(&w, seed);
        let mut reference_exchanges = Vec::new();
        let mut parallel_exchanges = Vec::new();
        for cycle in 0..10 {
            if cycle == 3 {
                let a = reference.mass_departure(fraction);
                let b = parallel.mass_departure(fraction);
                prop_assert_eq!(a, b);
            }
            reference_exchanges.push(
                reference
                    .drive(&w.cfg.eager(), RunOptions::cycles(1).oracle(), |_, _| {})
                    .exchanges(),
            );
            parallel_exchanges.push(
                parallel
                    .drive(&w.cfg.eager(), RunOptions::cycles(1).threads(threads), |_, _| {})
                    .exchanges(),
            );
        }
        prop_assert_eq!(reference_exchanges, parallel_exchanges);
        prop_assert_eq!(
            sim_fingerprint(&reference),
            sim_fingerprint(&parallel),
            "eager run diverged (seed {}, threads {})",
            seed, threads
        );
    }

    /// Mixed schedule through the *default* drive (no thread override),
    /// whose worker count comes from `P3Q_THREADS` / available parallelism:
    /// whatever the environment chooses must match the reference. CI runs
    /// this whole suite under P3Q_THREADS ∈ {1, 3, 8}.
    #[test]
    fn default_thread_count_matches_reference_on_mixed_schedules(
        seed in 0u64..1000,
    ) {
        let w = world(seed ^ 0x3C3C);
        let mut reference = eager_sim(&w, seed);
        let mut parallel = eager_sim(&w, seed);
        for round in 0..4 {
            reference.drive(&w.cfg.lazy(), RunOptions::cycles(1).oracle(), |_, _| {});
            parallel.drive(&w.cfg.lazy(), RunOptions::cycles(1), |_, _| {});
            let a = reference
                .drive(&w.cfg.eager(), RunOptions::cycles(1).oracle(), |_, _| {})
                .exchanges();
            let b = parallel
                .drive(&w.cfg.eager(), RunOptions::cycles(1), |_, _| {})
                .exchanges();
            prop_assert_eq!(a, b, "exchange counts diverged in round {}", round);
        }
        prop_assert_eq!(sim_fingerprint(&reference), sim_fingerprint(&parallel));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bootstrap is thread-count independent: filling the random views with
    /// any worker-thread count leaves the whole simulation byte-identical
    /// to the sequential reference — including over churned membership
    /// (departed nodes are skipped, alive picks unchanged) — and the
    /// resulting state is a valid base for identical gossip cycles.
    #[test]
    fn bootstrap_parallel_equals_reference(
        seed in 0u64..1000,
        threads in 1usize..9,
        departed in 0u32..3,
    ) {
        let w = world(seed ^ 0xB0075);
        let build = |which: u32| {
            let mut sim = build_simulator(
                &w.trace.dataset,
                &w.cfg,
                &StorageDistribution::Uniform(300),
                seed,
            );
            if departed > 0 {
                sim.mass_departure(departed as f64 * 0.1);
            }
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB007);
            match which {
                0 => bootstrap_random_views_reference(&mut sim, &w.cfg, &mut rng),
                _ => bootstrap_random_views_with_threads(&mut sim, &w.cfg, &mut rng, threads),
            }
            sim
        };
        let mut reference = build(0);
        let mut parallel = build(1);
        prop_assert_eq!(
            sim_fingerprint(&reference),
            sim_fingerprint(&parallel),
            "bootstrap diverged with {} threads", threads
        );
        // And the bootstrapped states behave identically under gossip.
        reference.drive(&w.cfg.lazy(), RunOptions::cycles(1).oracle(), |_, _| {});
        parallel.drive(&w.cfg.lazy(), RunOptions::cycles(1), |_, _| {});
        prop_assert_eq!(sim_fingerprint(&reference), sim_fingerprint(&parallel));
    }
}

/// The event-queue integration drives the same engine: scheduling dynamics
/// and churn as events must equal applying them by hand between cycles.
#[test]
fn scheduled_events_equal_hand_rolled_mutations() {
    let w = world(424_242);
    let batch = DynamicsGenerator::new(DynamicsConfig::paper_day(0xDA7)).generate(&w.trace);

    // Hand-rolled: run 2 cycles, apply the batch, run 2 more.
    let mut manual = lazy_sim(&w, 11);
    manual.drive(&w.cfg.lazy(), RunOptions::cycles(2), |_, _| {});
    apply_profile_changes(&mut manual, &batch);
    manual.drive(&w.cfg.lazy(), RunOptions::cycles(2), |_, _| {});

    // Scheduled: the change batch fires at cycle 2 through the run loop.
    let mut scheduled = lazy_sim(&w, 11);
    let mut events = EventQueue::new();
    events.schedule(2, &batch);
    scheduled.drive(
        &w.cfg.lazy(),
        RunOptions::cycles(4).events(&mut events),
        |sim, event| {
            if let RunEvent::Scheduled(batch) = event {
                apply_profile_changes(sim, batch);
            }
        },
    );

    assert!(events.is_empty());
    assert_eq!(sim_fingerprint(&manual), sim_fingerprint(&scheduled));
}
