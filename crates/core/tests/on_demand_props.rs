//! Property tests pinning the demand-driven resolver to the global oracle:
//! every network `OnDemandNetworks` ever serves — freshly resolved,
//! memoized, patched in place, or re-resolved after invalidation — must be
//! byte-identical to `IdealNetworks::compute` over the current dataset, on
//! random traces, under random delta batches and churn, for every shard
//! layout and worker-thread count (`P3Q_THREADS ∈ {1, 3, 8}`).

use proptest::prelude::*;

use p3q::baseline::IdealNetworks;
use p3q::resolver::{OnDemandNetworks, ResolveStats};
use p3q::similarity::ActionIndex;
use p3q_trace::{
    ChangeBatch, Dataset, ItemId, Profile, ProfileChange, TagId, TaggingAction, UserId,
};

/// Same dense random-dataset shape as `similarity_props`: collisions
/// (shared actions, ties, popular items) are common.
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    prop::collection::vec(prop::collection::vec((0u32..12, 0u32..6), 0..30), 2..14).prop_map(
        |users| {
            let profiles: Vec<Profile> = users
                .into_iter()
                .map(|actions| {
                    Profile::from_actions(
                        actions
                            .into_iter()
                            .map(|(i, t)| TaggingAction::new(ItemId(i), TagId(t))),
                    )
                })
                .collect();
            Dataset::new(profiles, 12, 6)
        },
    )
}

type RawBatch = Vec<(usize, Vec<(u32, u32)>)>;

fn arb_batches() -> impl Strategy<Value = Vec<RawBatch>> {
    prop::collection::vec(
        prop::collection::vec(
            (0usize..64, prop::collection::vec((0u32..12, 0u32..6), 0..8)),
            1..5,
        ),
        1..4,
    )
}

fn change_batch(raw: &RawBatch, num_users: usize) -> ChangeBatch {
    let mut changes: Vec<ProfileChange> = Vec::new();
    for &(user_sel, ref actions) in raw {
        let user = UserId::from_index(user_sel % num_users);
        let new_actions: Vec<TaggingAction> = actions
            .iter()
            .map(|&(i, t)| TaggingAction::new(ItemId(i), TagId(t)))
            .collect();
        match changes.iter_mut().find(|c| c.user == user) {
            Some(change) => change.new_actions.extend(new_actions),
            None => changes.push(ProfileChange { user, new_actions }),
        }
    }
    ChangeBatch { changes }
}

/// Queried users: a selector-driven subset so some users are queried
/// repeatedly (hitting the memo) and others never (never resolved).
fn queried(selectors: &[usize], num_users: usize) -> Vec<UserId> {
    selectors
        .iter()
        .map(|&sel| UserId::from_index(sel % num_users))
        .collect()
}

proptest! {
    /// Lazy resolution equals the global oracle on every queried user, for
    /// every shard layout, and untouched users are never resolved.
    #[test]
    fn resolution_matches_the_global_oracle(
        dataset in arb_dataset(),
        queries in prop::collection::vec(0usize..64, 1..12),
        s in 1usize..6,
        shards in 1usize..5,
    ) {
        let index = ActionIndex::build_with_shards(&dataset, shards);
        let oracle = IdealNetworks::compute(&dataset, s);
        let mut resolver = OnDemandNetworks::new(dataset.num_users(), s);
        let queriers = queried(&queries, dataset.num_users());
        for &user in &queriers {
            prop_assert_eq!(
                resolver.resolve(&dataset, &index, user),
                oracle.network_of(user),
                "user {} ({} shards)", user, shards
            );
        }
        let mut unique = queriers.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(resolver.cached_count(), unique.len());
        prop_assert_eq!(resolver.stats().resolutions, unique.len());
        prop_assert_eq!(
            resolver.stats().cache_hits,
            queriers.len() - unique.len(),
            "repeat queries must hit the memo"
        );
    }

    /// Under interleaved delta batches, memoized-then-invalidated (or
    /// patched-in-place) entries stay byte-equal to a from-scratch oracle
    /// over the mutated dataset — the exact-invalidation contract.
    #[test]
    fn invalidation_keeps_queried_users_oracle_equal(
        dataset in arb_dataset(),
        batches in arb_batches(),
        queries in prop::collection::vec(0usize..64, 1..10),
        s in 1usize..6,
        shards in 1usize..5,
    ) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build_with_shards(&dataset, shards);
        let mut resolver = OnDemandNetworks::new(dataset.num_users(), s);
        let queriers = queried(&queries, dataset.num_users());
        // Warm the memo before any dynamics, so the delta path hits cached
        // entries (evict and patch both exercised).
        resolver.resolve_many(&dataset, &index, &queriers, 2);
        for (step, raw) in batches.iter().enumerate() {
            let batch = change_batch(raw, dataset.num_users());
            batch.apply(&mut dataset);
            resolver.apply_change_batch(&dataset, &mut index, &batch);
            let oracle = IdealNetworks::compute(&dataset, s);
            // Surviving cached entries must already be fresh (patched or
            // untouched) without re-resolution...
            for user in dataset.users() {
                if let Some(cached) = resolver.cached(user) {
                    prop_assert_eq!(
                        cached, oracle.network_of(user),
                        "stale cache at step {} for {} ({} shards)", step, user, shards
                    );
                }
            }
            // ...and every queried user (evicted ones re-resolve) matches.
            for &user in &queriers {
                prop_assert_eq!(
                    resolver.resolve(&dataset, &index, user),
                    oracle.network_of(user),
                    "step {}, user {} ({} shards)", step, user, shards
                );
            }
        }
    }

    /// Churn: after departures strip the index, every cached survivor is
    /// still oracle-equal and departed users resolve to empty networks.
    #[test]
    fn churn_invalidation_matches_the_oracle(
        dataset in arb_dataset(),
        raw in arb_batches(),
        queries in prop::collection::vec(0usize..64, 1..10),
        departures in prop::collection::vec(0usize..64, 1..5),
        s in 1usize..6,
        shards in 1usize..5,
    ) {
        let mut dataset = dataset;
        let mut index = ActionIndex::build_with_shards(&dataset, shards);
        let mut resolver = OnDemandNetworks::new(dataset.num_users(), s);
        let queriers = queried(&queries, dataset.num_users());
        resolver.resolve_many(&dataset, &index, &queriers, 2);

        // One change batch first, so departures hit freshly patched state.
        let batch = change_batch(&raw[0], dataset.num_users());
        batch.apply(&mut dataset);
        resolver.apply_change_batch(&dataset, &mut index, &batch);

        let mut departed: Vec<UserId> = departures
            .iter()
            .map(|&sel| UserId::from_index(sel % dataset.num_users()))
            .collect();
        departed.sort_unstable();
        departed.dedup();
        let old_profiles: Vec<(UserId, Profile)> = departed
            .iter()
            .map(|&u| (u, dataset.profile(u).clone()))
            .collect();
        for &u in &departed {
            *dataset.profile_mut(u) = Profile::new();
        }
        resolver.apply_departures(&mut index, old_profiles.iter().map(|(u, p)| (*u, p)));

        let oracle = IdealNetworks::compute(&dataset, s);
        for user in dataset.users() {
            if let Some(cached) = resolver.cached(user) {
                prop_assert_eq!(cached, oracle.network_of(user), "stale cache for {}", user);
            }
        }
        for &user in &queriers {
            prop_assert_eq!(
                resolver.resolve(&dataset, &index, user),
                oracle.network_of(user),
                "{}", user
            );
        }
        for &u in &departed {
            prop_assert!(resolver.resolve(&dataset, &index, u).is_empty());
        }
    }

    /// The full resolve → invalidate → re-resolve cycle is byte-identical
    /// for every worker-thread count: cache contents AND work counters.
    #[test]
    fn resolution_is_thread_count_independent(
        dataset in arb_dataset(),
        batches in arb_batches(),
        queries in prop::collection::vec(0usize..64, 1..10),
        s in 1usize..6,
    ) {
        let queriers = queried(&queries, dataset.num_users());
        type CacheSnapshot = Vec<Option<Vec<(UserId, u64)>>>;
        let run = |threads: usize| -> (CacheSnapshot, ResolveStats) {
            let mut dataset = dataset.clone();
            let mut index = ActionIndex::build(&dataset);
            let mut resolver = OnDemandNetworks::new(dataset.num_users(), s);
            resolver.resolve_many(&dataset, &index, &queriers, threads);
            for raw in &batches {
                let batch = change_batch(raw, dataset.num_users());
                batch.apply(&mut dataset);
                resolver.apply_change_batch_with_threads(&dataset, &mut index, &batch, threads);
                resolver.resolve_many(&dataset, &index, &queriers, threads);
            }
            let cache = dataset
                .users()
                .map(|u| resolver.cached(u).map(<[(UserId, u64)]>::to_vec))
                .collect();
            (cache, resolver.stats())
        };
        let reference = run(1);
        for threads in [3, 8] {
            prop_assert_eq!(&run(threads), &reference, "threads = {}", threads);
        }
    }
}
