//! Property tests pinning the fault-injection layer and the hardened
//! protocols to the determinism contract of the plan/commit engine:
//!
//! * a **zero-fault** `FaultPlan` is a no-op — a drive with
//!   `RunOptions::faulted` and `FaultConfig::none()` leaves the whole
//!   simulation byte-identical to the faultless engine, for every
//!   worker-thread count;
//! * a **fault schedule is a pure function of `(seed, FaultConfig)`** —
//!   re-running the same faulted scenario reproduces every drop, delay,
//!   duplicate, crash and restart (same plan fingerprint, same end state),
//!   while a different fault seed diverges;
//! * the faulted engine keeps its **parallel == reference** guarantee under
//!   a composite fault mix (loss + delay + duplication + crash/restart);
//! * crash/restart round-trips through `Membership` **never double-count**
//!   alive nodes: the alive counter always equals the number of alive
//!   flags, and restarts of already-alive nodes are refused.
//!
//! Same shape as `engine_props.rs`: random scenarios via proptest and a
//! deliberately thorough state fingerprint instead of spot checks.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use proptest::prelude::*;
use rand::SeedableRng;

use p3q::prelude::*;

/// A stable digest of one node's complete protocol state (the same
/// everything-that-could-diverge folding as `engine_props.rs`, plus the
/// fault-hardening fields: deadlines, retry counters, task leases).
fn node_fingerprint(node: &P3qNode, h: &mut DefaultHasher) {
    node.id.hash(h);
    node.profile_version().hash(h);
    node.profile().actions().hash(h);
    node.storage_budget().hash(h);

    for entry in node.personal_network.iter() {
        entry.peer.hash(h);
        entry.score.hash(h);
        entry.staleness.hash(h);
        entry.meta.digest_version.hash(h);
        entry.meta.profile_version.hash(h);
        match &entry.meta.profile {
            Some(profile) => profile.actions().hash(h),
            None => u64::MAX.hash(h),
        }
    }
    for entry in node.random_view.iter() {
        entry.peer.hash(h);
        entry.age.hash(h);
        entry.meta.version.hash(h);
    }

    let mut query_ids: Vec<QueryId> = node.querier_states.keys().copied().collect();
    query_ids.sort_unstable();
    for qid in query_ids {
        let state = &node.querier_states[&qid];
        qid.hash(h);
        state.remaining.hash(h);
        state.target_profiles.hash(h);
        let mut used: Vec<UserId> = state.used_profiles.iter().copied().collect();
        used.sort_unstable();
        used.hash(h);
        state.started_cycle.hash(h);
        state.completed_cycle.hash(h);
        state.deadline_cycle.hash(h);
        state.progress_marker.hash(h);
        state.last_progress_cycle.hash(h);
        state.retries.hash(h);
        state.nra.list_count().hash(h);
        state.traffic.partial_results.hash(h);
        state.traffic.users_reached.hash(h);
    }
    let mut task_ids: Vec<QueryId> = node.tasks.keys().copied().collect();
    task_ids.sort_unstable();
    for qid in task_ids {
        let task = &node.tasks[&qid];
        qid.hash(h);
        task.querier.hash(h);
        task.remaining.hash(h);
        task.expires_cycle.hash(h);
    }
}

/// Fingerprint of the whole simulation: membership, every node, every
/// bandwidth counter.
fn sim_fingerprint(sim: &Simulator<P3qNode>) -> u64 {
    let mut h = DefaultHasher::new();
    sim.cycle().hash(&mut h);
    sim.membership().alive_count().hash(&mut h);
    for idx in 0..sim.num_nodes() {
        sim.is_alive(idx).hash(&mut h);
        node_fingerprint(sim.node(idx), &mut h);
    }
    sim.bandwidth.totals().hash(&mut h);
    for category in sim.bandwidth.categories() {
        category.hash(&mut h);
        sim.bandwidth.category_bytes(category).hash(&mut h);
        for idx in 0..sim.num_nodes() {
            sim.bandwidth.node_bytes(idx, category).hash(&mut h);
        }
    }
    h.finish()
}

struct World {
    trace: p3q_trace::SyntheticTrace,
    cfg: P3qConfig,
    ideal: IdealNetworks,
    queries: Vec<Query>,
}

fn world(seed: u64) -> World {
    let mut trace_cfg = TraceConfig::tiny(seed);
    trace_cfg.num_users = 60;
    let trace = TraceGenerator::new(trace_cfg).generate();
    let cfg = P3qConfig::tiny();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let queries: Vec<Query> = QueryGenerator::new(seed ^ 0xFA17)
        .one_query_per_user(&trace.dataset)
        .into_iter()
        .filter(|q| !ideal.network_of(q.querier).is_empty())
        .take(5)
        .collect();
    World {
        trace,
        cfg,
        ideal,
        queries,
    }
}

fn lazy_sim(world: &World, seed: u64) -> Simulator<P3qNode> {
    let mut sim = build_simulator(
        &world.trace.dataset,
        &world.cfg,
        &StorageDistribution::Uniform(300),
        seed,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &world.cfg, &mut rng);
    sim
}

fn eager_sim(world: &World, cfg: &P3qConfig, seed: u64) -> Simulator<P3qNode> {
    let budgets = vec![1usize; world.trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, seed);
    init_ideal_networks(&mut sim, &world.ideal);
    for (i, query) in world.queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim
}

/// A composite fault mix exercising every fault kind at once.
fn composite_faults(fault_seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::lossy(0.2, fault_seed);
    cfg.duplicate_rate = 0.1;
    cfg.crash_rate = 0.05;
    cfg.downtime_cycles = 1;
    cfg.validate();
    cfg
}

/// Membership invariant: the alive counter equals the number of alive
/// flags — a crash/restart round-trip that double-counted a node would
/// break this immediately.
fn assert_membership_consistent(sim: &Simulator<P3qNode>) -> Result<(), TestCaseError> {
    let flags = (0..sim.num_nodes())
        .filter(|&idx| sim.is_alive(idx))
        .count();
    prop_assert_eq!(
        sim.membership().alive_count(),
        flags,
        "membership alive_count diverged from alive flags at cycle {}",
        sim.cycle()
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ISSUE property (a): a zero-fault `FaultPlan` produces runs
    /// byte-identical to the faultless engine, across thread counts
    /// 1 / 3 / 8, for both protocols and with hardening knobs both off
    /// and on (with no faults the machinery must never fire).
    #[test]
    fn zero_fault_runs_match_the_faultless_engine_across_threads(
        seed in 0u64..1000,
        hardened in 0u32..2,
    ) {
        let mut w = world(seed);
        let hardened = hardened == 1;
        if hardened {
            w.cfg = w.cfg.with_fault_tolerance(20, 4, 10);
        }
        let cfg = w.cfg.clone();

        // Lazy mode.
        let mut faultless = lazy_sim(&w, seed);
        faultless.drive(&cfg.lazy(), RunOptions::cycles(4).oracle(), |_, _| {});
        for threads in [1usize, 3, 8] {
            let mut faulted = lazy_sim(&w, seed);
            let mut faults = FaultPlan::new(FaultConfig::none());
            faulted.drive(
                &cfg.lazy(),
                RunOptions::cycles(4).threads(threads).faulted(&mut faults),
                |_, _| {},
            );
            prop_assert_eq!(faults.stats(), FaultStats::default());
            prop_assert_eq!(
                sim_fingerprint(&faultless),
                sim_fingerprint(&faulted),
                "zero-fault lazy run diverged (seed {}, threads {}, hardened {})",
                seed, threads, hardened
            );
        }

        // Eager mode.
        let mut faultless = eager_sim(&w, &cfg, seed);
        let mut exchanges = Vec::new();
        for _ in 0..6 {
            exchanges.push(
                faultless
                    .drive(&cfg.eager(), RunOptions::cycles(1).oracle(), |_, _| {})
                    .exchanges(),
            );
        }
        for threads in [1usize, 3, 8] {
            let mut faulted = eager_sim(&w, &cfg, seed);
            let mut faults = FaultPlan::new(FaultConfig::none());
            let mut faulted_exchanges = Vec::new();
            for _ in 0..6 {
                faulted_exchanges.push(
                    faulted
                        .drive(
                            &cfg.eager(),
                            RunOptions::cycles(1).threads(threads).faulted(&mut faults),
                            |_, _| {},
                        )
                        .exchanges(),
                );
            }
            prop_assert_eq!(faults.stats(), FaultStats::default());
            prop_assert_eq!(&exchanges, &faulted_exchanges);
            prop_assert_eq!(
                sim_fingerprint(&faultless),
                sim_fingerprint(&faulted),
                "zero-fault eager run diverged (seed {}, threads {}, hardened {})",
                seed, threads, hardened
            );
        }
    }

    /// ISSUE property (b): the fault schedule is a pure function of
    /// `(seed, FaultConfig)` — two runs with the same pair agree on the
    /// fault-plan fingerprint, the fault statistics and the complete end
    /// state; flipping the fault seed diverges the schedule.
    #[test]
    fn fault_schedules_are_deterministic_in_seed_and_config(
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
    ) {
        let w = world(seed);
        let cfg = w.cfg.clone().with_fault_tolerance(20, 4, 10);

        let run = |fault_seed: u64| {
            let mut sim = eager_sim(&w, &cfg, seed);
            let mut faults = FaultPlan::new(composite_faults(fault_seed));
            sim.drive(
                &cfg.eager(),
                RunOptions::cycles(8).faulted(&mut faults),
                |_, _| {},
            );
            (faults.fingerprint(), faults.stats(), sim_fingerprint(&sim))
        };

        let (fp_a, stats_a, state_a) = run(fault_seed);
        let (fp_b, stats_b, state_b) = run(fault_seed);
        prop_assert_eq!(fp_a, fp_b, "same (seed, FaultConfig) gave different schedules");
        prop_assert_eq!(stats_a, stats_b);
        prop_assert_eq!(state_a, state_b, "same fault schedule gave different end states");

        let (fp_c, _, _) = run(fault_seed ^ 0xDEAD_BEEF);
        // Independent fault seeds must not collide on the schedule.
        prop_assert_ne!(fp_a, fp_c);
    }

    /// The faulted engine keeps the parallel == reference guarantee under
    /// a composite fault mix, for both protocols and any thread count.
    #[test]
    fn faulted_parallel_equals_reference_under_composite_faults(
        seed in 0u64..1000,
        threads in 1usize..9,
    ) {
        let w = world(seed ^ 0x0FF);
        let cfg = w.cfg.clone().with_fault_tolerance(20, 4, 10);
        let fault_cfg = composite_faults(seed ^ 0xFA01);

        // Lazy mode.
        let mut reference = lazy_sim(&w, seed);
        let mut parallel = lazy_sim(&w, seed);
        let mut ref_faults = FaultPlan::new(fault_cfg);
        let mut par_faults = FaultPlan::new(fault_cfg);
        for _ in 0..6 {
            reference.drive(
                &cfg.lazy(),
                RunOptions::cycles(1).oracle().faulted(&mut ref_faults),
                |_, _| {},
            );
            parallel.drive(
                &cfg.lazy(),
                RunOptions::cycles(1).threads(threads).faulted(&mut par_faults),
                |_, _| {},
            );
        }
        prop_assert_eq!(ref_faults.fingerprint(), par_faults.fingerprint());
        prop_assert_eq!(ref_faults.stats(), par_faults.stats());
        prop_assert_eq!(
            sim_fingerprint(&reference),
            sim_fingerprint(&parallel),
            "faulted lazy run diverged (seed {}, threads {})",
            seed, threads
        );

        // Eager mode.
        let mut reference = eager_sim(&w, &cfg, seed);
        let mut parallel = eager_sim(&w, &cfg, seed);
        let mut ref_faults = FaultPlan::new(fault_cfg);
        let mut par_faults = FaultPlan::new(fault_cfg);
        for _ in 0..8 {
            let a = reference
                .drive(
                    &cfg.eager(),
                    RunOptions::cycles(1).oracle().faulted(&mut ref_faults),
                    |_, _| {},
                )
                .exchanges();
            let b = parallel
                .drive(
                    &cfg.eager(),
                    RunOptions::cycles(1).threads(threads).faulted(&mut par_faults),
                    |_, _| {},
                )
                .exchanges();
            prop_assert_eq!(a, b, "exchange counts diverged");
        }
        prop_assert_eq!(ref_faults.fingerprint(), par_faults.fingerprint());
        prop_assert_eq!(ref_faults.stats(), par_faults.stats());
        prop_assert_eq!(
            sim_fingerprint(&reference),
            sim_fingerprint(&parallel),
            "faulted eager run diverged (seed {}, threads {})",
            seed, threads
        );
    }

    /// ISSUE property (c): crash/restart round-trips through `Membership`
    /// never double-count alive nodes. After every faulted cycle the alive
    /// counter equals the number of alive flags, never exceeds the
    /// population, and once all pending restarts have drained under a
    /// zero-fault tail every node is alive exactly once.
    #[test]
    fn crash_restart_round_trips_never_double_count_alive_nodes(
        seed in 0u64..1000,
        crash in 1u32..5,
        downtime in 0u64..4,
    ) {
        let w = world(seed ^ 0xC0A5);
        let cfg = w.cfg.clone();
        let mut sim = lazy_sim(&w, seed);
        let mut faults = FaultPlan::new(FaultConfig::crash_restart(
            crash as f64 / 10.0,
            downtime,
            seed ^ 0xC0A57,
        ));
        for _ in 0..8 {
            sim.drive(
                &cfg.lazy(),
                RunOptions::cycles(1).faulted(&mut faults),
                |_, _| {},
            );
            assert_membership_consistent(&sim)?;
            prop_assert!(sim.membership().alive_count() <= sim.num_nodes());
        }
        let stats = faults.stats();
        prop_assert!(stats.restarts <= stats.crashes, "more restarts than crashes");

        // Round-trip the survivors by hand: `rejoin` must accept every dead
        // node exactly once and refuse every alive one, landing the counter
        // exactly on the population — a double-count would overshoot.
        let n = sim.num_nodes();
        for idx in 0..n {
            let was_dead = !sim.is_alive(idx);
            prop_assert_eq!(
                sim.membership_mut().rejoin(idx),
                was_dead,
                "rejoin disagreed with the alive flag of node {}",
                idx
            );
        }
        assert_membership_consistent(&sim)?;
        prop_assert_eq!(
            sim.membership().alive_count(),
            n,
            "a crash/restart round-trip lost or duplicated a node"
        );
        // A second rejoin sweep is a no-op: nobody is counted twice.
        for idx in 0..n {
            prop_assert!(!sim.membership_mut().rejoin(idx));
        }
        prop_assert_eq!(sim.membership().alive_count(), n);
    }
}
