//! A message-passing transport runtime for
//! [`GossipProtocol`](p3q_sim::GossipProtocol)s — shard actors over
//! mailboxes, byte-identical to the deterministic simulator.
//!
//! The paper's protocols run in a cycle-driven simulator
//! ([`p3q_sim::Simulator`]); this crate runs the *same* protocols the way a
//! deployment would — as communicating processes — without giving up the
//! simulator's reproducibility. Three pieces:
//!
//! * [`mailbox`] — the pluggable substrate: a [`Transport`] mints FIFO,
//!   reliable, typed mailboxes; [`InProcess`] backs them with
//!   `std::sync::mpsc` channels and thread-per-shard actors, and a socket
//!   backend can slot in behind the same two traits.
//! * [`DeliverySchedule`] — a seeded total order on message delivery. The
//!   canonical schedule reproduces the simulator's plan order exactly; a
//!   seeded one replays a different (but fixed) per-cycle arrival
//!   permutation, so runs are always a pure function of
//!   `(run seed, schedule)`.
//! * [`TransportRuntime`] — the sequencer: it partitions a simulator's node
//!   population into contiguous shards, runs each shard as an actor behind
//!   a command mailbox, and drives them through the engine's plan/commit
//!   cycle protocol (prepare → snapshot → plan → gather → fault-filter →
//!   conflict-free batches → extract/commit/restore/effect → finish).
//!
//! # The actor model
//!
//! Every shard actor owns `nodes[base .. base + len]` of the global
//! population and *only* communicates: commands in through one mailbox,
//! replies out through another. The sequencer is the single sender on every
//! command mailbox, so each actor observes commands in exactly the order the
//! sequencer issued them — the whole coordination story is "FIFO per
//! mailbox, single writer", no locks, no shared state. Cross-shard
//! exchanges move node state as *values*: the destination's shard lends a
//! guest copy, the initiator's shard commits against it, and the sequencer
//! routes the mutated guest home before anything else may observe it.
//!
//! # The determinism argument
//!
//! A transport run under the canonical schedule is byte-identical to the
//! simulator for the same seed — node states, bandwidth accounting, cycle
//! counts, fault stream consumption. The argument (spelled out at the
//! runtime's module docs) rests on what the plan/commit engine already
//! guarantees: all randomness is derived from per-cycle seeds by *index*
//! (never by execution order), planning is a pure function of the
//! cycle-start snapshot, conflict-free batches make commit mutations
//! disjoint, and cross-pair mutations travel as data. The runtime replays
//! those phases over messages, preserving each ordering the engine fixes;
//! the property suites in `crates/core` pin the equality across protocols,
//! shard layouts, fault mixes and `P3Q_THREADS` settings. Failure of an
//! actor (a scheduled stop-and-respawn, see
//! [`TransportRuntime::schedule_actor_restart`]) is an infrastructure
//! fault: shard state survives the hop, so protocol output is unaffected —
//! protocol-level faults (lost messages, node crashes) stay where they
//! were, in [`p3q_sim::FaultPlan`], reinterpreted over the wire.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
pub mod mailbox;
mod runtime;
mod schedule;

pub use mailbox::{InProcess, MailboxClosed, MailboxReceiver, MailboxSender, Transport};
pub use runtime::TransportRuntime;
pub use schedule::DeliverySchedule;
