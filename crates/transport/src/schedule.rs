//! The [`DeliverySchedule`]: a seeded total order on message delivery.
//!
//! A real message-passing deployment has no global plan list — each shard
//! announces its planned exchanges and *some* arrival order at the
//! sequencer decides the cycle's total plan order, which in turn fixes the
//! per-plan commit RNG streams and the conflict-free batching. The schedule
//! makes that arrival order an explicit, replayable input instead of a race:
//!
//! * [`DeliverySchedule::canonical`] gathers shard announcements in
//!   ascending shard order. Shards own contiguous node ranges and plan
//!   their alive locals in ascending order, so the concatenation is exactly
//!   the simulator's ascending-node plan order — this is the schedule under
//!   which a transport run is **byte-identical to the simulator** (the
//!   oracle-equality the property suites pin).
//! * [`DeliverySchedule::seeded`] draws a deterministic permutation of the
//!   gather order per cycle from its own seed stream. Runs are still fully
//!   reproducible — same `(run seed, schedule)` → same bytes — but model a
//!   network whose arrival order differs from the simulator's; only
//!   schedule-determinism (not oracle equality) holds.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use p3q_sim::stream_seed;

/// Stream label of the schedule's per-cycle permutation RNGs.
const STREAM_DELIVERY_ORDER: u64 = 0x0DE1_14E2_0000_0001;

/// A replayable total order on per-cycle message delivery (see the module
/// docs). `(run seed, DeliverySchedule)` fully determines a transport run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliverySchedule {
    seed: Option<u64>,
}

impl DeliverySchedule {
    /// The canonical order: shard announcements gather in ascending shard
    /// order, reproducing the simulator's plan order byte-for-byte.
    pub fn canonical() -> Self {
        Self { seed: None }
    }

    /// A seeded order: each cycle's gather order is a deterministic
    /// permutation drawn from `seed`'s per-cycle stream.
    pub fn seeded(seed: u64) -> Self {
        Self { seed: Some(seed) }
    }

    /// Returns `true` for the canonical (oracle-equal) schedule.
    pub fn is_canonical(&self) -> bool {
        self.seed.is_none()
    }

    /// The order in which the sequencer collects the shards' plan
    /// announcements for `cycle`: a permutation of `0..num_shards`.
    pub(crate) fn gather_order(&self, num_shards: usize, cycle: u64) -> Vec<usize> {
        let mut order: Vec<usize> = (0..num_shards).collect();
        if let Some(seed) = self.seed {
            let mut rng =
                StdRng::seed_from_u64(stream_seed(stream_seed(seed, STREAM_DELIVERY_ORDER), cycle));
            order.shuffle(&mut rng);
        }
        order
    }
}

impl Default for DeliverySchedule {
    fn default() -> Self {
        Self::canonical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_is_ascending() {
        let s = DeliverySchedule::canonical();
        assert!(s.is_canonical());
        assert_eq!(s.gather_order(4, 0), vec![0, 1, 2, 3]);
        assert_eq!(s.gather_order(4, 17), vec![0, 1, 2, 3]);
    }

    #[test]
    fn seeded_order_is_a_deterministic_permutation() {
        let s = DeliverySchedule::seeded(42);
        assert!(!s.is_canonical());
        let a = s.gather_order(8, 3);
        let b = s.gather_order(8, 3);
        assert_eq!(a, b, "same (seed, cycle) must give the same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>(), "must be a permutation");
        // Different cycles draw from different streams (overwhelmingly
        // likely to differ for 8 shards; pinned here for these constants).
        assert_ne!(s.gather_order(8, 3), s.gather_order(8, 4));
    }

    #[test]
    fn different_seeds_give_different_orders() {
        assert_ne!(
            DeliverySchedule::seeded(1).gather_order(8, 0),
            DeliverySchedule::seeded(2).gather_order(8, 0),
        );
    }
}
