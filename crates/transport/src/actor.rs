//! The shard actor: one thread owning one contiguous slice of the node
//! population, driven entirely by messages.
//!
//! An actor holds `nodes[base .. base + len]` of the global population and
//! never touches anything else. All coordination flows through two FIFO
//! mailboxes (see [`crate::mailbox`]): commands arrive from the sequencer as
//! [`ToShard`] messages, replies go back as [`FromShard`]. The actor has a
//! single sender (the sequencer), so the order it observes commands in *is*
//! the sequencer's send order — the runtime leans on that to guarantee, for
//! example, that a guest node's [`ToShard::Restore`] lands before any
//! [`ToShard::Effect`] of a later plan reads it.
//!
//! The protocol per cycle, in the order the sequencer sends it:
//! `Transitions` (crash/restart hooks) → `Prepare` (per-node bookkeeping,
//! replies with a state snapshot) → `Plan` (read-only planning against the
//! assembled world, replies with the shard's plans) → per batch: `Extract`
//! (lend a guest copy of a node to a remote initiator) / `Commit` (execute
//! plans whose initiator is local) / `Restore` (write back a mutated guest)
//! / `Effect` (apply a routed third-party effect) → `FinishCycle`
//! (end-of-cycle hooks, replies whether any alive local wants more) →
//! eventually `Stop`, returning the shard's state to the sequencer.

use std::sync::Arc;

use p3q_sim::exchange::{commit_rng, plan_rng};
use p3q_sim::{
    BandwidthRecorder, CommitOutcome, CycleContext, EffectContext, ExchangePlan, GossipProtocol,
    Membership,
};

use crate::mailbox::{MailboxReceiver, MailboxSender};

/// One commit assigned to the initiator's shard: the plan, its index in the
/// cycle's global plan order (fixing its RNG stream), and — when the
/// destination lives on another shard — a guest copy of the destination
/// node, extracted by the sequencer via [`ToShard::Extract`].
#[derive(Debug)]
pub struct CommitJob<N, Pl> {
    /// The planned exchange to execute.
    pub plan: ExchangePlan<Pl>,
    /// Position in the cycle's global plan order.
    pub plan_idx: usize,
    /// Guest copy of the remote destination, if the destination is not
    /// local to the committing shard.
    pub guest: Option<N>,
}

/// What one executed [`CommitJob`] produced: the protocol outcome plus the
/// mutated guest (tagged with its global index) for the sequencer to route
/// home via [`ToShard::Restore`].
#[derive(Debug)]
pub struct JobOutcome<N, E> {
    /// Position in the cycle's global plan order.
    pub plan_idx: usize,
    /// Deferred charges and effects returned by the commit.
    pub outcome: CommitOutcome<E>,
    /// The mutated guest node and its global index, if the job had one.
    pub guest: Option<(usize, N)>,
}

/// Commands the sequencer sends a shard actor (see the module docs for the
/// per-cycle protocol).
#[derive(Debug)]
pub enum ToShard<N, Pl, E> {
    /// Run the fault-transition hooks on the listed local nodes (restarts
    /// first, then crashes — engine order).
    Transitions {
        /// The executing cycle.
        cycle: u64,
        /// Local nodes that just rejoined.
        restarted: Vec<usize>,
        /// Local nodes that just crashed.
        crashed: Vec<usize>,
    },
    /// Run per-node preparation on alive locals, then reply with a
    /// [`FromShard::Snapshot`] of the shard's post-prepare state.
    Prepare {
        /// The executing cycle.
        cycle: u64,
        /// Who is alive this cycle.
        membership: Arc<Membership>,
    },
    /// Plan all alive locals against the assembled world snapshot; reply
    /// with [`FromShard::Plans`].
    Plan {
        /// The executing cycle.
        cycle: u64,
        /// The cycle seed all per-node plan RNGs derive from.
        cycle_seed: u64,
        /// Post-prepare snapshot of the entire population.
        world: Arc<Vec<N>>,
        /// Who is alive this cycle.
        membership: Arc<Membership>,
    },
    /// Reply with a [`FromShard::Guest`] copy of the local node at this
    /// global index (it is about to be a remote commit's destination).
    Extract {
        /// Global index of the node to copy out.
        node: usize,
    },
    /// Execute the given jobs (all initiators local, in ascending plan
    /// order); reply with [`FromShard::Outcomes`].
    Commit {
        /// The executing (pre-increment) cycle.
        cycle: u64,
        /// The cycle seed all per-plan commit RNGs derive from.
        cycle_seed: u64,
        /// The jobs to run, ascending by `plan_idx`.
        jobs: Vec<CommitJob<N, Pl>>,
    },
    /// Write back the post-commit state of a local node that served as a
    /// remote commit's guest.
    Restore {
        /// Global index of the node to overwrite.
        node: usize,
        /// Its post-commit state.
        state: N,
    },
    /// Apply one third-party effect routed to this shard (its target is
    /// local); bandwidth it records lands in the shard's local recorder.
    Effect {
        /// The committing (pre-increment) cycle.
        cycle: u64,
        /// The effect to apply.
        effect: E,
    },
    /// Run end-of-cycle bookkeeping on **all** locals (departed included);
    /// reply with [`FromShard::WantsMore`] over the alive ones.
    FinishCycle {
        /// The now-completed (post-increment) cycle.
        cycle: u64,
        /// Who is alive.
        membership: Arc<Membership>,
    },
    /// Shut down: the actor returns its nodes and bandwidth recorder.
    Stop,
}

/// Replies a shard actor sends the sequencer.
#[derive(Debug)]
pub enum FromShard<N, Pl, E> {
    /// Reply to [`ToShard::Prepare`]: the shard's post-prepare node states.
    Snapshot(Vec<N>),
    /// Reply to [`ToShard::Plan`]: plans of the shard's alive locals, in
    /// ascending initiator order.
    Plans(Vec<ExchangePlan<Pl>>),
    /// Reply to [`ToShard::Extract`]: a copy of the requested node.
    Guest(N),
    /// Reply to [`ToShard::Commit`]: one outcome per job, ascending by
    /// `plan_idx`.
    Outcomes(Vec<JobOutcome<N, E>>),
    /// Reply to [`ToShard::FinishCycle`]: whether any alive local's state
    /// could still re-ignite gossip.
    WantsMore(bool),
}

/// Disjoint `&mut`s to two distinct local nodes — the same-shard pairwise
/// commit shape.
fn local_pair_mut<N>(nodes: &mut [N], a: usize, b: usize) -> (&mut N, &mut N) {
    assert_ne!(a, b, "a gossip exchange needs two distinct nodes");
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}

/// The shard actor body: processes commands until [`ToShard::Stop`] (or a
/// hangup), then returns the shard's node states and its local bandwidth
/// recorder for the sequencer to reassemble and merge.
pub(crate) fn run_actor<P, R, S>(
    proto: &P,
    base: usize,
    mut nodes: Vec<P::Node>,
    rx: R,
    tx: S,
) -> (Vec<P::Node>, BandwidthRecorder)
where
    P: GossipProtocol,
    P::Node: Clone,
    R: MailboxReceiver<ToShard<P::Node, P::Payload, P::Effect>>,
    S: MailboxSender<FromShard<P::Node, P::Payload, P::Effect>>,
{
    let mut bandwidth = BandwidthRecorder::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToShard::Transitions {
                cycle,
                restarted,
                crashed,
            } => {
                for idx in restarted {
                    proto.on_restart(&mut nodes[idx - base], cycle);
                }
                for idx in crashed {
                    proto.on_crash(&mut nodes[idx - base], cycle);
                }
            }
            ToShard::Prepare { cycle, membership } => {
                for (offset, node) in nodes.iter_mut().enumerate() {
                    if membership.is_alive(base + offset) {
                        proto.prepare(node, cycle);
                    }
                }
                if tx.send(FromShard::Snapshot(nodes.clone())).is_err() {
                    break;
                }
            }
            ToShard::Plan {
                cycle,
                cycle_seed,
                world,
                membership,
            } => {
                let ctx = CycleContext::new(&world, &membership, cycle);
                let mut plans = Vec::new();
                for offset in 0..nodes.len() {
                    let idx = base + offset;
                    if membership.is_alive(idx) {
                        let mut rng = plan_rng(cycle_seed, idx);
                        proto.plan(&ctx, idx, &mut rng, &mut plans);
                    }
                }
                if tx.send(FromShard::Plans(plans)).is_err() {
                    break;
                }
            }
            ToShard::Extract { node } => {
                let guest = nodes[node - base].clone();
                if tx.send(FromShard::Guest(guest)).is_err() {
                    break;
                }
            }
            ToShard::Commit {
                cycle,
                cycle_seed,
                jobs,
            } => {
                let mut scratch = proto.scratch();
                let mut results = Vec::with_capacity(jobs.len());
                for job in jobs {
                    let mut rng = commit_rng(cycle_seed, job.plan_idx);
                    let plan = &job.plan;
                    let (outcome, guest) = match (plan.destination, job.guest) {
                        (None, _) => {
                            let initiator = &mut nodes[plan.initiator - base];
                            let outcome =
                                proto.commit(cycle, plan, initiator, None, &mut rng, &mut scratch);
                            (outcome, None)
                        }
                        (Some(dest), Some(mut guest)) => {
                            let initiator = &mut nodes[plan.initiator - base];
                            let outcome = proto.commit(
                                cycle,
                                plan,
                                initiator,
                                Some(&mut guest),
                                &mut rng,
                                &mut scratch,
                            );
                            (outcome, Some((dest, guest)))
                        }
                        (Some(dest), None) => {
                            let (initiator, destination) =
                                local_pair_mut(&mut nodes, plan.initiator - base, dest - base);
                            let outcome = proto.commit(
                                cycle,
                                plan,
                                initiator,
                                Some(destination),
                                &mut rng,
                                &mut scratch,
                            );
                            (outcome, None)
                        }
                    };
                    results.push(JobOutcome {
                        plan_idx: job.plan_idx,
                        outcome,
                        guest,
                    });
                }
                if tx.send(FromShard::Outcomes(results)).is_err() {
                    break;
                }
            }
            ToShard::Restore { node, state } => {
                nodes[node - base] = state;
            }
            ToShard::Effect { cycle, effect } => {
                let mut world = EffectContext::windowed(&mut nodes, &mut bandwidth, cycle, base);
                proto.apply_effect(&mut world, effect);
            }
            ToShard::FinishCycle { cycle, membership } => {
                for node in nodes.iter_mut() {
                    proto.finish_cycle(node, cycle);
                }
                let wants_more = nodes.iter().enumerate().any(|(offset, node)| {
                    membership.is_alive(base + offset) && proto.wants_more(node, cycle)
                });
                if tx.send(FromShard::WantsMore(wants_more)).is_err() {
                    break;
                }
            }
            ToShard::Stop => break,
        }
    }
    (nodes, bandwidth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pair_mut_is_disjoint_in_both_orders() {
        let mut v = vec![0u32, 1, 2, 3];
        {
            let (a, b) = local_pair_mut(&mut v, 0, 3);
            *a += 10;
            *b += 10;
        }
        {
            let (a, b) = local_pair_mut(&mut v, 2, 1);
            *a += 100;
            *b += 100;
        }
        assert_eq!(v, vec![10, 101, 102, 13]);
    }

    #[test]
    #[should_panic(expected = "distinct nodes")]
    fn local_pair_mut_rejects_same_index() {
        let mut v = vec![0u32; 2];
        let _ = local_pair_mut(&mut v, 1, 1);
    }
}
