//! The transport runtime: a sequencer driving shard actors through one
//! plan/commit cycle protocol, byte-identical to [`Simulator`] under the
//! canonical [`DeliverySchedule`].
//!
//! # Why this is byte-identical to the simulator
//!
//! The engine's cycle is already a message-shaped computation: planning is a
//! pure function of the cycle-start snapshot, commits touch only their own
//! conflict-free pair, and everything that crosses a pair boundary travels
//! as data (bandwidth [`Charge`]s, routed effects). The runtime replays the
//! exact same phases over mailboxes, preserving every ordering the engine
//! fixes:
//!
//! * **RNG streams** — the sequencer owns a clone of the simulator's master
//!   RNG and draws one cycle seed per cycle, exactly like the engine; all
//!   per-node plan RNGs and per-plan commit RNGs derive from that seed by
//!   *index*, so where a computation runs (which actor, which thread) can
//!   never touch a stream.
//! * **Plan order** — shards own contiguous node ranges and plan their
//!   alive locals in ascending order, so gathering announcements in
//!   ascending shard order (the canonical schedule) concatenates into the
//!   engine's ascending global plan list. The fault filter, the greedy
//!   conflict-free batching and the per-plan commit RNGs all key off that
//!   list, so they decide identically.
//! * **Commit isolation** — within a batch no node appears twice, so a
//!   commit's `&mut` pair is disjoint from every other commit's; a
//!   cross-shard destination travels as a *guest* value (extract → commit →
//!   restore) which nothing else can observe until it is restored.
//! * **Apply order** — all of a batch's guests are restored before any of
//!   its charges/effects apply, mirroring "all commits finish, then
//!   outcomes apply in plan order". Per-shard mailboxes are FIFO with the
//!   sequencer as single sender, so a shard always sees restore-before-
//!   effect and effect-before-next-batch-extract.
//! * **Bandwidth** — commit charges land in the sequencer's master
//!   recorder at the committing cycle; effect-recorded bandwidth lands in
//!   shard-local recorders merged in at the end. Recorder merge is
//!   commutative addition over the same `(node, cycle, category, bytes)`
//!   records the engine makes, so every aggregate matches.
//!
//! A seeded schedule replays a *different* (but fixed) arrival permutation
//! per cycle: runs remain fully deterministic in `(seed, schedule)`, and
//! only the canonical schedule additionally equals the simulator.

use std::sync::Arc;
use std::thread;

use rand::rngs::StdRng;
use rand::Rng;

use p3q_sim::{
    conflict_free_batches, BandwidthRecorder, Charge, CycleReport, EventQueue, ExchangePlan,
    GossipProtocol, Membership, RunOptions, RunParts, RunReport, Simulator,
};

use crate::actor::{run_actor, CommitJob, FromShard, JobOutcome, ToShard};
use crate::mailbox::{InProcess, MailboxReceiver, MailboxSender, Transport};
use crate::schedule::DeliverySchedule;

/// Sequencer-side panic message when a shard actor's mailbox hangs up.
const ACTOR_GONE: &str = "shard actor hung up (it panicked or was stopped)";

/// One live shard actor, sequencer side: its command mailbox, its reply
/// mailbox and the handle that returns its state on shutdown.
struct ActorHandle<'scope, N, Pl, E, T>
where
    N: Send + Sync,
    Pl: Send + Sync,
    E: Send,
    T: Transport,
{
    tx: T::Sender<ToShard<N, Pl, E>>,
    reply: T::Receiver<FromShard<N, Pl, E>>,
    join: thread::ScopedJoinHandle<'scope, (Vec<N>, BandwidthRecorder)>,
}

/// Spawns one shard actor thread owning `nodes` (global indices starting at
/// `base`), wired to the sequencer through two fresh mailboxes.
fn spawn_actor<'scope, P, T>(
    scope: &'scope thread::Scope<'scope, '_>,
    proto: &'scope P,
    transport: &mut T,
    base: usize,
    nodes: Vec<P::Node>,
) -> ActorHandle<'scope, P::Node, P::Payload, P::Effect, T>
where
    P: GossipProtocol,
    P::Node: Clone + 'static,
    P::Payload: 'static,
    P::Effect: 'static,
    T: Transport,
    T::Sender<FromShard<P::Node, P::Payload, P::Effect>>: 'static,
    T::Receiver<ToShard<P::Node, P::Payload, P::Effect>>: 'static,
{
    let (tx, cmd_rx) = transport.mailbox::<ToShard<P::Node, P::Payload, P::Effect>>();
    let (reply_tx, reply) = transport.mailbox::<FromShard<P::Node, P::Payload, P::Effect>>();
    let join = scope.spawn(move || run_actor::<P, _, _>(proto, base, nodes, cmd_rx, reply_tx));
    ActorHandle { tx, reply, join }
}

/// A message-passing runtime executing [`GossipProtocol`]s over shard
/// actors, oracle-equal to [`Simulator`] (see the module docs).
///
/// Constructed from a simulator snapshot ([`from_simulator`]
/// (Self::from_simulator)); between [`drive`](Self::drive) calls the
/// runtime owns the node states, membership, RNG position and bandwidth
/// totals, so state can be inspected (or churned) exactly where a
/// simulator's could. During a drive the states live inside the actors —
/// which is why, unlike `Simulator::drive`, the transport drive takes no
/// observer closure: observe between drives instead.
#[derive(Debug)]
pub struct TransportRuntime<N, T: Transport = InProcess> {
    /// Contiguous node shards; `shards[s][0]` has global index `bases[s]`.
    shards: Vec<Vec<N>>,
    bases: Vec<usize>,
    shard_size: usize,
    num_nodes: usize,
    membership: Membership,
    cycle: u64,
    rng: StdRng,
    schedule: DeliverySchedule,
    /// Scheduled infrastructure faults: actor ids to stop-and-respawn at
    /// the start of the given cycle.
    restarts: EventQueue<usize>,
    transport: T,
    /// Bandwidth and message accounting for the whole run.
    pub bandwidth: BandwidthRecorder,
}

impl<N: Send + Sync> TransportRuntime<N, InProcess> {
    /// Snapshots a simulator into a runtime over `num_actors` in-process
    /// shard actors (clamped to `1..=num_nodes`; the contiguous equal-size
    /// partition may round the actual actor count down — see
    /// [`num_actors`](Self::num_actors)).
    ///
    /// Takes `&mut` only to clone the simulator's RNG position; the
    /// simulator is otherwise untouched and can keep running as the
    /// reference for oracle-equality checks.
    pub fn from_simulator(
        sim: &mut Simulator<N>,
        num_actors: usize,
        schedule: DeliverySchedule,
    ) -> Self
    where
        N: Clone,
    {
        Self::with_transport(sim, num_actors, schedule, InProcess)
    }
}

impl<N: Send + Sync, T: Transport> TransportRuntime<N, T> {
    /// [`from_simulator`](TransportRuntime::from_simulator) over an explicit
    /// transport backend.
    pub fn with_transport(
        sim: &mut Simulator<N>,
        num_actors: usize,
        schedule: DeliverySchedule,
        transport: T,
    ) -> Self
    where
        N: Clone,
    {
        let n = sim.num_nodes();
        let actors = num_actors.clamp(1, n.max(1));
        let shard_size = n.div_ceil(actors).max(1);
        let mut shards: Vec<Vec<N>> = sim.nodes().chunks(shard_size).map(<[N]>::to_vec).collect();
        if shards.is_empty() {
            shards.push(Vec::new());
        }
        let bases: Vec<usize> = shards
            .iter()
            .scan(0usize, |next, shard| {
                let base = *next;
                *next += shard.len();
                Some(base)
            })
            .collect();
        Self {
            shards,
            bases,
            shard_size,
            num_nodes: n,
            membership: sim.membership().clone(),
            cycle: sim.cycle(),
            rng: sim.rng().clone(),
            schedule,
            restarts: EventQueue::new(),
            transport,
            bandwidth: sim.bandwidth.clone(),
        }
    }

    /// Number of nodes (alive or departed).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of shard actors the population is partitioned over.
    pub fn num_actors(&self) -> usize {
        self.shards.len()
    }

    /// Current cycle (number of completed cycles driven so far).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The delivery schedule this runtime replays.
    pub fn schedule(&self) -> DeliverySchedule {
        self.schedule
    }

    /// The membership (who is alive).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Mutable membership, e.g. to inject churn **between** drives.
    pub fn membership_mut(&mut self) -> &mut Membership {
        &mut self.membership
    }

    /// One node's state, by global index (between drives).
    pub fn node(&self, idx: usize) -> &N {
        &self.shards[idx / self.shard_size][idx % self.shard_size]
    }

    /// All node states in ascending global order (between drives).
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.shards.iter().flatten()
    }

    /// Schedules an *infrastructure* fault: at the start of `at_cycle` the
    /// given actor is stopped, joined and respawned on its recovered shard
    /// state. Protocol output is unaffected by construction (the shard's
    /// nodes and accounting survive the hop) — which is exactly the
    /// property the crash/restart suites pin. Restarts falling beyond a
    /// drive stay queued for the next one.
    ///
    /// # Panics
    /// Panics if `actor >= self.num_actors()`.
    pub fn schedule_actor_restart(&mut self, at_cycle: u64, actor: usize) {
        assert!(actor < self.shards.len(), "actor index out of range");
        self.restarts.schedule(at_cycle, actor);
    }

    /// The one run-loop entry: executes cycles of `proto` under the given
    /// [`RunOptions`] — the same options shape `Simulator::drive` takes.
    ///
    /// Three option axes don't exist on a transport runtime and panic if
    /// requested: an event queue ([`RunOptions::events`]; inspect and
    /// mutate state between drives instead), oracle mode
    /// ([`RunOptions::oracle`]; the transport's oracle *is* the simulator),
    /// and a thread override ([`RunOptions::threads`]; parallelism is the
    /// actor count, fixed at construction). Fault schedules and both loop
    /// shapes (fixed cycles, until-idle) behave exactly as on the
    /// simulator.
    ///
    /// # Panics
    /// Panics on the options above, if a shard actor dies mid-run, or if
    /// the protocol emits an effect whose
    /// [`effect_target`](GossipProtocol::effect_target) is `None` — a
    /// sharded runtime cannot route an unconstrained effect.
    pub fn drive<P>(&mut self, proto: &P, opts: RunOptions<'_, P::Payload>) -> RunReport
    where
        P: GossipProtocol<Node = N>,
        P::Payload: Clone + 'static,
        P::Effect: 'static,
        N: Clone + 'static,
        T::Sender<FromShard<N, P::Payload, P::Effect>>: 'static,
        T::Receiver<ToShard<N, P::Payload, P::Effect>>: 'static,
    {
        let RunParts {
            threads,
            oracle,
            mut faults,
            events,
            cycles,
            until_idle,
        } = opts.into_parts();
        assert!(
            threads.is_none(),
            "a transport runtime's parallelism is its actor count, fixed at construction"
        );
        assert!(
            !oracle,
            "a transport runtime has no oracle mode — the oracle is the simulator itself"
        );
        assert!(
            events.is_none(),
            "transport runs have no scheduled-event axis — act between drives instead"
        );
        proto.begin_run(until_idle);

        let Self {
            shards,
            bases,
            shard_size,
            num_nodes,
            membership,
            cycle,
            rng,
            schedule,
            restarts,
            transport,
            bandwidth,
        } = self;
        let shard_size = *shard_size;
        let num_nodes = *num_nodes;
        let num_shards = shards.len();
        let shard_of = move |idx: usize| idx / shard_size;

        let mut total = CycleReport::default();
        let mut cycles_run = 0u64;

        thread::scope(|scope| {
            let mut actors: Vec<ActorHandle<'_, N, P::Payload, P::Effect, T>> = shards
                .iter_mut()
                .enumerate()
                .map(|(s, shard)| {
                    spawn_actor::<P, T>(scope, proto, transport, bases[s], std::mem::take(shard))
                })
                .collect();

            for _ in 0..cycles {
                // Infrastructure faults first: stop, join and respawn due
                // actors on their recovered state. The dead actor's local
                // bandwidth merges into the master immediately so nothing
                // is lost across the hop.
                for s in restarts.pop_due(*cycle) {
                    let old = actors.remove(s);
                    old.tx.send(ToShard::Stop).expect(ACTOR_GONE);
                    let (nodes, recorder) = old.join.join().expect("shard actor panicked");
                    bandwidth.merge(&recorder);
                    actors.insert(
                        s,
                        spawn_actor::<P, T>(scope, proto, transport, bases[s], nodes),
                    );
                }

                let this_cycle = *cycle;
                // Engine order: the cycle seed is drawn before anything
                // else consumes randomness.
                let cycle_seed: u64 = rng.gen();

                // Fault transitions, grouped by owning shard; hooks run
                // in-shard, restarts before crashes (engine order).
                if let Some(f) = faults.as_deref_mut() {
                    let transitions = f.begin_cycle(this_cycle, membership);
                    let mut restarted_by: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
                    let mut crashed_by: Vec<Vec<usize>> = vec![Vec::new(); num_shards];
                    for &idx in &transitions.restarted {
                        restarted_by[shard_of(idx)].push(idx);
                    }
                    for &idx in &transitions.crashed {
                        crashed_by[shard_of(idx)].push(idx);
                    }
                    for s in 0..num_shards {
                        if restarted_by[s].is_empty() && crashed_by[s].is_empty() {
                            continue;
                        }
                        actors[s]
                            .tx
                            .send(ToShard::Transitions {
                                cycle: this_cycle,
                                restarted: std::mem::take(&mut restarted_by[s]),
                                crashed: std::mem::take(&mut crashed_by[s]),
                            })
                            .expect(ACTOR_GONE);
                    }
                }

                // The cycle's membership view, frozen post-transitions.
                let alive = Arc::new(membership.clone());

                // Prepare, then assemble the post-prepare world snapshot
                // from the shard replies (ascending shard order = global
                // node order). Lazy planners read *remote* state from this
                // snapshot (probe/re-bootstrap inspect other nodes), which
                // is why the full world broadcasts every cycle.
                for a in &actors {
                    a.tx.send(ToShard::Prepare {
                        cycle: this_cycle,
                        membership: alive.clone(),
                    })
                    .expect(ACTOR_GONE);
                }
                let mut world: Vec<N> = Vec::with_capacity(num_nodes);
                for a in &actors {
                    let FromShard::Snapshot(snapshot) = a.reply.recv().expect(ACTOR_GONE) else {
                        panic!("protocol violation: expected a prepare snapshot");
                    };
                    world.extend(snapshot);
                }
                let world = Arc::new(world);

                // Plan everywhere; gather announcements in the delivery
                // schedule's order. Canonical = ascending shards = the
                // engine's global plan list.
                for a in &actors {
                    a.tx.send(ToShard::Plan {
                        cycle: this_cycle,
                        cycle_seed,
                        world: world.clone(),
                        membership: alive.clone(),
                    })
                    .expect(ACTOR_GONE);
                }
                let mut plans: Vec<ExchangePlan<P::Payload>> = Vec::new();
                for s in schedule.gather_order(num_shards, this_cycle) {
                    let FromShard::Plans(announced) = actors[s].reply.recv().expect(ACTOR_GONE)
                    else {
                        panic!("protocol violation: expected a plan announcement");
                    };
                    plans.extend(announced);
                }

                // Delivery faults interpose between plan and commit, on the
                // gathered (totally ordered) plan list — reinterpreted here
                // as transport faults: a dropped plan is a lost message, a
                // delayed one re-arrives in a later cycle's list.
                let plans = match faults.as_deref_mut() {
                    Some(f) => f.filter_plans(this_cycle, plans, membership),
                    None => plans,
                };

                let batches = conflict_free_batches(&plans, num_nodes);
                let pair_exchanges = plans.iter().filter(|p| p.destination.is_some()).count();
                let report = CycleReport {
                    plans: plans.len(),
                    pair_exchanges,
                    solo_steps: plans.len() - pair_exchanges,
                    batches: batches.len(),
                };

                for batch in &batches {
                    // Extract guests for cross-shard destinations and group
                    // the batch's jobs by the initiator's shard, preserving
                    // ascending plan order. Guests are safe to copy out:
                    // within a conflict-free batch the destination appears
                    // in no other plan, and per-shard FIFO ordering
                    // guarantees all prior restores/effects already landed.
                    let mut jobs_by: Vec<Vec<CommitJob<N, P::Payload>>> =
                        (0..num_shards).map(|_| Vec::new()).collect();
                    for &plan_idx in batch {
                        let plan = &plans[plan_idx];
                        let home = shard_of(plan.initiator);
                        let guest = match plan.destination {
                            Some(dest) if shard_of(dest) != home => {
                                let owner = shard_of(dest);
                                actors[owner]
                                    .tx
                                    .send(ToShard::Extract { node: dest })
                                    .expect(ACTOR_GONE);
                                let FromShard::Guest(guest) =
                                    actors[owner].reply.recv().expect(ACTOR_GONE)
                                else {
                                    panic!("protocol violation: expected a guest extraction");
                                };
                                Some(guest)
                            }
                            _ => None,
                        };
                        jobs_by[home].push(CommitJob {
                            plan: plan.clone(),
                            plan_idx,
                            guest,
                        });
                    }

                    // Fan the batch out to every shard with jobs, then
                    // gather; commits run concurrently across shards. The
                    // sort restores global plan order (commit RNGs never
                    // depended on it — they key off plan_idx).
                    let committing: Vec<usize> = (0..num_shards)
                        .filter(|&s| !jobs_by[s].is_empty())
                        .collect();
                    for &s in &committing {
                        actors[s]
                            .tx
                            .send(ToShard::Commit {
                                cycle: this_cycle,
                                cycle_seed,
                                jobs: std::mem::take(&mut jobs_by[s]),
                            })
                            .expect(ACTOR_GONE);
                    }
                    let mut outcomes: Vec<JobOutcome<N, P::Effect>> = Vec::new();
                    for &s in &committing {
                        let FromShard::Outcomes(done) = actors[s].reply.recv().expect(ACTOR_GONE)
                        else {
                            panic!("protocol violation: expected commit outcomes");
                        };
                        outcomes.extend(done);
                    }
                    outcomes.sort_by_key(|o| o.plan_idx);

                    // All guests go home before any effect applies: the
                    // engine applies outcomes only after the whole batch
                    // committed, so an early plan's effect must observe a
                    // later plan's post-commit destination. FIFO per shard
                    // turns this send order into that guarantee.
                    for outcome in &mut outcomes {
                        if let Some((idx, state)) = outcome.guest.take() {
                            actors[shard_of(idx)]
                                .tx
                                .send(ToShard::Restore { node: idx, state })
                                .expect(ACTOR_GONE);
                        }
                    }

                    // Charges and effects in plan order (engine order).
                    // Charges land in the master recorder; effects route to
                    // the shard owning their declared target.
                    for outcome in outcomes {
                        for Charge {
                            node,
                            category,
                            bytes,
                        } in outcome.outcome.charges
                        {
                            bandwidth.record(node, this_cycle, category, bytes);
                        }
                        for effect in outcome.outcome.effects {
                            let target = proto.effect_target(&effect).expect(
                                "a sharded transport needs GossipProtocol::effect_target \
                                 to route effects",
                            );
                            actors[shard_of(target)]
                                .tx
                                .send(ToShard::Effect {
                                    cycle: this_cycle,
                                    effect,
                                })
                                .expect(ACTOR_GONE);
                        }
                    }
                }

                *cycle += 1;
                let completed = *cycle;
                // End-of-cycle bookkeeping over every node, plus the
                // until-idle re-ignition probe, one round-trip per shard.
                for a in &actors {
                    a.tx.send(ToShard::FinishCycle {
                        cycle: completed,
                        membership: alive.clone(),
                    })
                    .expect(ACTOR_GONE);
                }
                let mut wants_more = false;
                for a in &actors {
                    let FromShard::WantsMore(wants) = a.reply.recv().expect(ACTOR_GONE) else {
                        panic!("protocol violation: expected a wants-more probe");
                    };
                    wants_more |= wants;
                }

                total.absorb(report);
                cycles_run += 1;

                if until_idle && report.pair_exchanges == 0 {
                    let idle = match faults.as_deref() {
                        None => true,
                        Some(f) => {
                            f.pending_delayed() == 0 && f.pending_restarts() == 0 && !wants_more
                        }
                    };
                    if idle {
                        break;
                    }
                }
            }

            // Stop every actor and reassemble: node states return to their
            // slots, shard-local (effect-recorded) bandwidth merges into
            // the master in ascending shard order.
            for (s, handle) in actors.into_iter().enumerate() {
                handle.tx.send(ToShard::Stop).expect(ACTOR_GONE);
                let (nodes, recorder) = handle.join.join().expect("shard actor panicked");
                bandwidth.merge(&recorder);
                shards[s] = nodes;
            }
        });

        RunReport {
            cycles_run,
            report: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p3q_sim::{CommitOutcome, CycleContext, EffectContext, FaultConfig, FaultPlan, RunOptions};

    /// The engine's toy ring protocol, with a routable effect: every alive
    /// node gossips with the next alive node (cyclically), both sides count
    /// the exchange, a charge is recorded and an effect increments a
    /// counter on node 0.
    struct RingProtocol;

    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Counter {
        initiated: u64,
        received: u64,
        effects: u64,
        prepared: u64,
        finished: u64,
        crashes: u64,
        restarts: u64,
    }

    impl GossipProtocol for RingProtocol {
        type Node = Counter;
        type Payload = ();
        type Effect = usize;
        type Scratch = ();

        fn scratch(&self) {}

        fn prepare(&self, node: &mut Counter, _cycle: u64) {
            node.prepared += 1;
        }

        fn plan(
            &self,
            world: &CycleContext<'_, Counter>,
            idx: usize,
            _rng: &mut rand::rngs::StdRng,
            out: &mut Vec<ExchangePlan<()>>,
        ) {
            let n = world.num_nodes();
            let partner = (1..n).map(|d| (idx + d) % n).find(|&p| world.is_alive(p));
            if let Some(partner) = partner {
                out.push(ExchangePlan {
                    initiator: idx,
                    destination: Some(partner),
                    payload: (),
                });
            }
        }

        fn commit(
            &self,
            _cycle: u64,
            plan: &ExchangePlan<()>,
            initiator: &mut Counter,
            destination: Option<&mut Counter>,
            _rng: &mut rand::rngs::StdRng,
            _scratch: &mut (),
        ) -> CommitOutcome<usize> {
            initiator.initiated += 1;
            destination.expect("ring plans are pairwise").received += 1;
            let mut outcome = CommitOutcome::empty();
            outcome.charge(plan.initiator, "ring", 10);
            outcome.effect(0);
            outcome
        }

        fn apply_effect(&self, world: &mut EffectContext<'_, Counter>, target: usize) {
            world.node_mut(target).effects += 1;
            world.record_bandwidth(target, "ring-effect", 1);
        }

        fn effect_target(&self, effect: &usize) -> Option<usize> {
            Some(*effect)
        }

        fn finish_cycle(&self, node: &mut Counter, _cycle: u64) {
            node.finished += 1;
        }

        fn on_crash(&self, node: &mut Counter, _cycle: u64) {
            node.initiated = 0;
            node.received = 0;
            node.crashes += 1;
        }

        fn on_restart(&self, node: &mut Counter, _cycle: u64) {
            node.restarts += 1;
        }
    }

    fn counters(n: usize, seed: u64) -> Simulator<Counter> {
        Simulator::new(vec![Counter::default(); n], seed)
    }

    fn assert_matches_simulator(
        sim: &Simulator<Counter>,
        transport: &TransportRuntime<Counter>,
        label: &str,
    ) {
        let sim_nodes: Vec<&Counter> = sim.nodes().iter().collect();
        let rt_nodes: Vec<&Counter> = transport.nodes().collect();
        assert_eq!(sim_nodes, rt_nodes, "{label}: node states diverged");
        assert_eq!(
            sim.bandwidth.totals(),
            transport.bandwidth.totals(),
            "{label}: bandwidth diverged"
        );
        assert_eq!(sim.cycle(), transport.cycle(), "{label}: cycle diverged");
    }

    #[test]
    fn canonical_schedule_matches_the_simulator_for_every_actor_count() {
        for num_actors in [1, 2, 3, 8, 23] {
            let mut sim = counters(23, 7);
            let mut reference = counters(23, 7);
            let mut transport = TransportRuntime::from_simulator(
                &mut sim,
                num_actors,
                DeliverySchedule::canonical(),
            );
            for _ in 0..3 {
                reference.drive(&RingProtocol, RunOptions::cycles(1), |_, _| {});
                transport.drive(&RingProtocol, RunOptions::cycles(1));
            }
            assert_matches_simulator(&reference, &transport, &format!("actors = {num_actors}"));
        }
    }

    #[test]
    fn faulted_runs_match_the_simulator() {
        let cfg = FaultConfig {
            drop_rate: 0.2,
            delay_rate: 0.2,
            duplicate_rate: 0.1,
            max_delay_cycles: 2,
            crash_rate: 0.05,
            downtime_cycles: 1,
            fault_seed: 99,
        };
        for num_actors in [1, 3, 8] {
            let mut seeded = counters(23, 7);
            let mut reference = counters(23, 7);
            let mut ref_faults: FaultPlan<()> = FaultPlan::new(cfg);
            let mut rt_faults: FaultPlan<()> = FaultPlan::new(cfg);
            let mut transport = TransportRuntime::from_simulator(
                &mut seeded,
                num_actors,
                DeliverySchedule::canonical(),
            );
            for _ in 0..8 {
                reference.drive(
                    &RingProtocol,
                    RunOptions::cycles(1).faulted(&mut ref_faults),
                    |_, _| {},
                );
                transport.drive(&RingProtocol, RunOptions::cycles(1).faulted(&mut rt_faults));
            }
            assert_matches_simulator(&reference, &transport, &format!("actors = {num_actors}"));
            assert_eq!(ref_faults.fingerprint(), rt_faults.fingerprint());
            assert_eq!(ref_faults.stats(), rt_faults.stats());
        }
    }

    #[test]
    fn actor_restarts_leave_the_run_byte_identical() {
        let mut sim = counters(23, 7);
        let mut reference = counters(23, 7);
        let mut transport =
            TransportRuntime::from_simulator(&mut sim, 4, DeliverySchedule::canonical());
        transport.schedule_actor_restart(1, 0);
        transport.schedule_actor_restart(1, 3);
        transport.schedule_actor_restart(2, 2);
        reference.drive(&RingProtocol, RunOptions::cycles(4), |_, _| {});
        transport.drive(&RingProtocol, RunOptions::cycles(4));
        assert_matches_simulator(&reference, &transport, "with actor restarts");
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        let run = |schedule: DeliverySchedule| {
            let mut sim = counters(23, 7);
            let mut transport = TransportRuntime::from_simulator(&mut sim, 4, schedule);
            let report = transport.drive(&RingProtocol, RunOptions::cycles(3));
            let nodes: Vec<Counter> = transport.nodes().cloned().collect();
            (nodes, transport.bandwidth.totals(), report)
        };
        assert_eq!(
            run(DeliverySchedule::seeded(42)),
            run(DeliverySchedule::seeded(42)),
            "same (seed, schedule) must be byte-identical"
        );
        // A seeded schedule still commits the same exchanges (the ring plan
        // list is a permutation), just in a different total order.
        let (_, totals, report) = run(DeliverySchedule::seeded(42));
        let (_, canonical_totals, canonical_report) = run(DeliverySchedule::canonical());
        assert_eq!(report.exchanges(), canonical_report.exchanges());
        assert_eq!(totals, canonical_totals);
    }

    #[test]
    fn until_complete_stops_with_the_simulator() {
        // The ring never quiets, so cap at the cycle budget; both drivers
        // must agree on cycles_run.
        let mut sim = counters(6, 13);
        let mut reference = counters(6, 13);
        let mut transport =
            TransportRuntime::from_simulator(&mut sim, 3, DeliverySchedule::canonical());
        let ref_run = reference.drive(&RingProtocol, RunOptions::until_complete(5), |_, _| {});
        let rt_run = transport.drive(&RingProtocol, RunOptions::until_complete(5));
        assert_eq!(ref_run, rt_run);
        assert_matches_simulator(&reference, &transport, "until-complete");
    }

    #[test]
    #[should_panic(expected = "actor count")]
    fn thread_override_is_rejected() {
        let mut sim = counters(4, 1);
        let mut transport =
            TransportRuntime::from_simulator(&mut sim, 2, DeliverySchedule::canonical());
        transport.drive(&RingProtocol, RunOptions::cycles(1).threads(2));
    }

    #[test]
    #[should_panic(expected = "oracle")]
    fn oracle_mode_is_rejected() {
        let mut sim = counters(4, 1);
        let mut transport =
            TransportRuntime::from_simulator(&mut sim, 2, DeliverySchedule::canonical());
        transport.drive(&RingProtocol, RunOptions::cycles(1).oracle());
    }

    #[test]
    fn partitioning_covers_the_population() {
        let mut sim = counters(10, 3);
        let transport =
            TransportRuntime::from_simulator(&mut sim, 4, DeliverySchedule::canonical());
        assert_eq!(transport.num_nodes(), 10);
        // ceil(10/4) = 3 per shard → 4 shards: 3+3+3+1.
        assert_eq!(transport.num_actors(), 4);
        assert_eq!(transport.nodes().count(), 10);
        for idx in 0..10 {
            assert_eq!(transport.node(idx), sim.node(idx));
        }
    }
}
