//! The pluggable message-passing substrate: mailboxes, and the [`Transport`]
//! that mints them.
//!
//! The runtime never names a concrete channel type — every sequencer↔actor
//! link is a mailbox pair obtained from a [`Transport`], so the in-process
//! backend ([`InProcess`], `std::sync::mpsc` under the hood) can later be
//! swapped for a socket-backed one without touching the runtime or the
//! actors. The contract a backend must honour is deliberately minimal and is
//! exactly what the determinism argument leans on:
//!
//! * **FIFO per mailbox** — messages sent through one [`MailboxSender`]
//!   arrive in send order. The runtime gives every actor a single sender
//!   (the sequencer), so per-actor delivery order equals the sequencer's
//!   send order and no acknowledgement round-trips are needed.
//! * **Reliable, unbounded send** — [`MailboxSender::send`] only fails when
//!   the receiving end is gone (an actor died). Lossy delivery is modelled
//!   *above* the transport by the fault layer ([`p3q_sim::FaultPlan`]),
//!   never by the channel.

use std::sync::mpsc;

/// Error of a send or receive on a mailbox whose other end has hung up.
///
/// Under the runtime's protocol an actor only hangs up by panicking (or by
/// being stopped), so the sequencer treats this as fatal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MailboxClosed;

impl std::fmt::Display for MailboxClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the mailbox's other endpoint is gone")
    }
}

impl std::error::Error for MailboxClosed {}

/// The sending half of a mailbox.
pub trait MailboxSender<M: Send>: Send {
    /// Enqueues one message; never blocks. Fails only if the receiving half
    /// was dropped.
    fn send(&self, msg: M) -> Result<(), MailboxClosed>;
}

/// The receiving half of a mailbox.
pub trait MailboxReceiver<M: Send>: Send {
    /// Blocks until a message arrives. Fails only if every sender was
    /// dropped.
    fn recv(&self) -> Result<M, MailboxClosed>;
}

/// A message-passing backend: a factory for typed point-to-point mailboxes.
///
/// The runtime requests two mailboxes per shard actor (commands in, replies
/// out). Backends are free to multiplex them over anything — threads and
/// `mpsc` here, sockets elsewhere — as long as each mailbox is FIFO and
/// reliable (see the module docs).
pub trait Transport {
    /// Sender type minted by [`Self::mailbox`].
    type Sender<M: Send>: MailboxSender<M>;
    /// Receiver type minted by [`Self::mailbox`].
    type Receiver<M: Send>: MailboxReceiver<M>;

    /// Creates one FIFO mailbox: a connected sender/receiver pair.
    fn mailbox<M: Send>(&mut self) -> (Self::Sender<M>, Self::Receiver<M>);
}

/// The in-process backend: one `std::sync::mpsc` channel per mailbox.
///
/// This is the only backend the repository ships; it is what the
/// oracle-equality suites pin against the simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct InProcess;

impl<M: Send> MailboxSender<M> for mpsc::Sender<M> {
    fn send(&self, msg: M) -> Result<(), MailboxClosed> {
        mpsc::Sender::send(self, msg).map_err(|_| MailboxClosed)
    }
}

impl<M: Send> MailboxReceiver<M> for mpsc::Receiver<M> {
    fn recv(&self) -> Result<M, MailboxClosed> {
        mpsc::Receiver::recv(self).map_err(|_| MailboxClosed)
    }
}

impl Transport for InProcess {
    type Sender<M: Send> = mpsc::Sender<M>;
    type Receiver<M: Send> = mpsc::Receiver<M>;

    fn mailbox<M: Send>(&mut self) -> (Self::Sender<M>, Self::Receiver<M>) {
        mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_process_mailboxes_are_fifo() {
        let mut t = InProcess;
        let (tx, rx) = t.mailbox::<u32>();
        for v in 0..10 {
            tx.send(v).unwrap();
        }
        for v in 0..10 {
            assert_eq!(rx.recv().unwrap(), v);
        }
    }

    #[test]
    fn dropping_the_receiver_closes_the_sender() {
        let mut t = InProcess;
        let (tx, rx) = t.mailbox::<u32>();
        drop(rx);
        assert_eq!(MailboxSender::send(&tx, 1), Err(MailboxClosed));
    }

    #[test]
    fn dropping_the_sender_closes_the_receiver() {
        let mut t = InProcess;
        let (tx, rx) = t.mailbox::<u32>();
        MailboxSender::send(&tx, 7).unwrap();
        drop(tx);
        assert_eq!(MailboxReceiver::recv(&rx), Ok(7));
        assert_eq!(MailboxReceiver::recv(&rx), Err(MailboxClosed));
    }
}
