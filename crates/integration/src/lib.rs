//! Integration test crate: see repository-level tests/ directory.
