//! Examples crate: the runnable sources live in the repository-level examples/ directory.
