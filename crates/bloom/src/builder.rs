//! Sizing helper: derive Bloom-filter geometry from capacity and target
//! false-positive rate.

use crate::BloomFilter;

/// Builds [`BloomFilter`]s sized for an expected number of keys and a target
/// false-positive rate, using the textbook optimum
/// `m = -n·ln(p) / (ln 2)^2` and `k = (m/n)·ln 2`.
///
/// P3Q users may tune the digest size against their bandwidth budget; the
/// paper's 20 Kbit / 0.1% point is one instance of this trade-off, and the
/// `ablation_bloom` benchmark sweeps others.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BloomBuilder {
    expected_keys: usize,
    target_fpr: f64,
}

impl BloomBuilder {
    /// Creates a builder for `expected_keys` keys at `target_fpr`
    /// false-positive rate.
    ///
    /// # Panics
    /// Panics if `expected_keys` is zero or `target_fpr` is outside `(0, 1)`.
    pub fn new(expected_keys: usize, target_fpr: f64) -> Self {
        assert!(expected_keys > 0, "expected_keys must be positive");
        assert!(
            target_fpr > 0.0 && target_fpr < 1.0,
            "target_fpr must be in (0, 1)"
        );
        Self {
            expected_keys,
            target_fpr,
        }
    }

    /// Optimal number of bits for the requested capacity and rate.
    pub fn optimal_bits(&self) -> usize {
        let n = self.expected_keys as f64;
        let ln2 = std::f64::consts::LN_2;
        let m = -n * self.target_fpr.ln() / (ln2 * ln2);
        m.ceil().max(8.0) as usize
    }

    /// Optimal number of hash functions for the requested capacity and rate.
    pub fn optimal_hashes(&self) -> u32 {
        let m = self.optimal_bits() as f64;
        let n = self.expected_keys as f64;
        ((m / n) * std::f64::consts::LN_2).round().max(1.0) as u32
    }

    /// Expected false-positive rate of the built filter once `expected_keys`
    /// keys have been inserted.
    pub fn expected_fpr(&self) -> f64 {
        let m = self.optimal_bits() as f64;
        let n = self.expected_keys as f64;
        let k = self.optimal_hashes() as f64;
        (1.0 - (-k * n / m).exp()).powf(k)
    }

    /// Builds an empty filter with the derived geometry.
    pub fn build(&self) -> BloomFilter {
        BloomFilter::new(self.optimal_bits(), self.optimal_hashes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_hits_target_rate() {
        let b = BloomBuilder::new(249, 0.001);
        assert!(b.expected_fpr() <= 0.0015, "fpr {}", b.expected_fpr());
        let f = b.build();
        assert!(f.bit_len() >= 249);
    }

    #[test]
    fn more_keys_need_more_bits() {
        let small = BloomBuilder::new(100, 0.01).optimal_bits();
        let large = BloomBuilder::new(10_000, 0.01).optimal_bits();
        assert!(large > small);
    }

    #[test]
    fn tighter_rate_needs_more_bits() {
        let loose = BloomBuilder::new(1000, 0.05).optimal_bits();
        let tight = BloomBuilder::new(1000, 0.0001).optimal_bits();
        assert!(tight > loose);
    }

    #[test]
    fn hashes_at_least_one() {
        assert!(BloomBuilder::new(1_000_000, 0.5).optimal_hashes() >= 1);
    }

    #[test]
    fn empirical_rate_matches_prediction() {
        let b = BloomBuilder::new(500, 0.01);
        let mut f = b.build();
        for k in 0..500u64 {
            f.insert(k);
        }
        let mut fp = 0;
        let probes = 50_000u64;
        for k in 10_000_000..10_000_000 + probes {
            if f.contains(k) {
                fp += 1;
            }
        }
        let measured = fp as f64 / probes as f64;
        assert!(
            measured < 0.02,
            "measured fpr {measured} far above target 0.01"
        );
    }

    #[test]
    #[should_panic(expected = "target_fpr")]
    fn rejects_invalid_rate() {
        let _ = BloomBuilder::new(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "expected_keys")]
    fn rejects_zero_keys() {
        let _ = BloomBuilder::new(0, 0.01);
    }
}
