//! The Bloom filter proper.

use serde::{Deserialize, Serialize};

use crate::hashing::hash_pair;
use crate::{PAPER_FILTER_BITS, PAPER_FILTER_HASHES};

/// A fixed-size Bloom filter over 64-bit keys.
///
/// P3Q inserts item identifiers into the filter; membership queries answer
/// "might this user have tagged this item?" with no false negatives and a
/// false-positive rate governed by the filter size and the number of inserted
/// items.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Stored as `u32` (filters are tens of kilobits; the simulator holds
    /// one per node, so the struct stays at 32 bytes instead of 48).
    bit_len: u32,
    num_hashes: u32,
    inserted: u32,
}

impl BloomFilter {
    /// Creates an empty filter with `bit_len` bits and `num_hashes` hash
    /// functions.
    ///
    /// # Panics
    /// Panics if `bit_len` is zero or `num_hashes` is zero.
    pub fn new(bit_len: usize, num_hashes: u32) -> Self {
        assert!(bit_len > 0, "a Bloom filter needs at least one bit");
        assert!(num_hashes > 0, "a Bloom filter needs at least one hash");
        let words = bit_len.div_ceil(64);
        Self {
            bits: vec![0; words],
            bit_len: u32::try_from(bit_len).expect("filters are at most 2^32 - 1 bits"),
            num_hashes,
            inserted: 0,
        }
    }

    /// Creates a filter with the parameters used throughout the paper's
    /// evaluation (20 Kbit, 7 hashes).
    pub fn with_paper_parameters() -> Self {
        Self::new(PAPER_FILTER_BITS, PAPER_FILTER_HASHES)
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = hash_pair(key);
        for i in 0..self.num_hashes {
            let idx = self.slot(h1, h2, i);
            self.bits[idx / 64] |= 1 << (idx % 64);
        }
        self.inserted += 1;
    }

    /// Returns `true` if the key *might* have been inserted, `false` if it
    /// definitely has not.
    pub fn contains(&self, key: u64) -> bool {
        let (h1, h2) = hash_pair(key);
        (0..self.num_hashes).all(|i| {
            let idx = self.slot(h1, h2, i);
            self.bits[idx / 64] & (1 << (idx % 64)) != 0
        })
    }

    /// Returns `true` if no key was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.inserted == 0
    }

    /// Number of `insert` calls performed (counting duplicates).
    pub fn inserted_keys(&self) -> usize {
        self.inserted as usize
    }

    /// Capacity of the filter in bits.
    pub fn bit_len(&self) -> usize {
        self.bit_len as usize
    }

    /// Number of hash functions.
    pub fn num_hashes(&self) -> u32 {
        self.num_hashes
    }

    /// Size of the filter payload when transmitted over the network, in bytes.
    ///
    /// This is the figure P3Q's bandwidth accounting charges for every digest
    /// exchanged in lazy-mode gossip.
    pub fn size_bytes(&self) -> usize {
        self.bit_len().div_ceil(8)
    }

    /// Resident heap bytes of the in-memory bit array (whole `u64` words,
    /// so usually slightly above [`Self::size_bytes`]).
    pub fn heap_bytes(&self) -> usize {
        self.bits.len() * std::mem::size_of::<u64>()
    }

    /// Number of bits currently set to one.
    pub fn ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of bits set to one (the filter's fill ratio).
    pub fn fill_ratio(&self) -> f64 {
        self.ones() as f64 / self.bit_len as f64
    }

    /// Estimated false-positive probability for the *current* fill ratio.
    ///
    /// For a filter with fill ratio `p` and `k` hashes, a key not in the set
    /// tests positive with probability `p^k`.
    pub fn false_positive_rate(&self) -> f64 {
        self.fill_ratio().powi(self.num_hashes as i32)
    }

    /// Returns `true` if the two filters share at least one set bit position.
    ///
    /// This is the cheap "might we share an item?" test used in step 1 of
    /// Algorithm 1 when a full membership probe is not possible (both sides
    /// only hold digests). It can over-approximate but never misses a real
    /// overlap, provided both filters use the same geometry.
    ///
    /// # Panics
    /// Panics if the two filters have different geometries.
    pub fn intersects(&self, other: &Self) -> bool {
        self.assert_same_geometry(other);
        self.bits
            .iter()
            .zip(other.bits.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// In-place union with another filter of identical geometry.
    ///
    /// # Panics
    /// Panics if the two filters have different geometries.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_same_geometry(other);
        for (a, b) in self.bits.iter_mut().zip(other.bits.iter()) {
            *a |= b;
        }
        self.inserted += other.inserted;
    }

    /// Clears the filter without changing its geometry.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = 0);
        self.inserted = 0;
    }

    /// Builds a filter of the given geometry from an iterator of keys.
    pub fn from_keys<I: IntoIterator<Item = u64>>(
        bit_len: usize,
        num_hashes: u32,
        keys: I,
    ) -> Self {
        let mut f = Self::new(bit_len, num_hashes);
        for k in keys {
            f.insert(k);
        }
        f
    }

    #[inline]
    fn slot(&self, h1: u64, h2: u64, i: u32) -> usize {
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.bit_len as u64) as usize
    }

    fn assert_same_geometry(&self, other: &Self) {
        assert_eq!(
            (self.bit_len, self.num_hashes),
            (other.bit_len, other.num_hashes),
            "Bloom filters must share the same geometry"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::new(1 << 12, 5);
        for k in 0..500u64 {
            f.insert(k * 7);
        }
        for k in 0..500u64 {
            assert!(f.contains(k * 7), "inserted key {} missing", k * 7);
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::new(1024, 3);
        assert!(f.is_empty());
        for k in 0..1000u64 {
            assert!(!f.contains(k));
        }
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_parameters() {
        let mut f = BloomFilter::with_paper_parameters();
        // Average delicious profile: 249 items.
        for k in 0..249u64 {
            f.insert(k);
        }
        let mut false_positives = 0usize;
        let probes = 100_000u64;
        for k in 1_000_000..1_000_000 + probes {
            if f.contains(k) {
                false_positives += 1;
            }
        }
        let rate = false_positives as f64 / probes as f64;
        assert!(
            rate < 0.001,
            "paper claims ~0.1% false positives, measured {rate}"
        );
    }

    #[test]
    fn false_positive_rate_stays_reasonable_for_large_profiles() {
        let mut f = BloomFilter::with_paper_parameters();
        // 99th-percentile delicious profile: 2000 items.
        for k in 0..2000u64 {
            f.insert(k);
        }
        assert!(f.false_positive_rate() < 0.01);
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::new(2048, 4);
        let mut b = BloomFilter::new(2048, 4);
        a.insert(1);
        a.insert(2);
        b.insert(100);
        a.union_with(&b);
        assert!(a.contains(1) && a.contains(2) && a.contains(100));
        assert_eq!(a.inserted_keys(), 3);
    }

    #[test]
    fn intersects_detects_shared_keys() {
        let mut a = BloomFilter::new(4096, 5);
        let mut b = BloomFilter::new(4096, 5);
        a.insert(7);
        b.insert(9999);
        // Disjoint small filters normally do not intersect.
        assert!(!a.intersects(&b));
        b.insert(7);
        assert!(a.intersects(&b));
    }

    #[test]
    fn clear_resets_state() {
        let mut f = BloomFilter::new(512, 3);
        f.insert(11);
        assert!(f.contains(11));
        f.clear();
        assert!(f.is_empty());
        assert!(!f.contains(11));
        assert_eq!(f.ones(), 0);
    }

    #[test]
    fn fill_ratio_grows_with_insertions() {
        let mut f = BloomFilter::new(1 << 14, 7);
        let before = f.fill_ratio();
        for k in 0..100 {
            f.insert(k);
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() <= 1.0);
    }

    #[test]
    fn size_bytes_rounds_up() {
        assert_eq!(BloomFilter::new(9, 1).size_bytes(), 2);
        assert_eq!(BloomFilter::new(8, 1).size_bytes(), 1);
        assert_eq!(BloomFilter::with_paper_parameters().size_bytes(), 2560);
    }

    #[test]
    #[should_panic(expected = "same geometry")]
    fn union_rejects_mismatched_geometry() {
        let mut a = BloomFilter::new(128, 3);
        let b = BloomFilter::new(256, 3);
        a.union_with(&b);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_rejected() {
        let _ = BloomFilter::new(0, 3);
    }

    #[test]
    fn from_keys_matches_incremental_inserts() {
        let keys = [3u64, 17, 99, 4242];
        let a = BloomFilter::from_keys(1024, 4, keys.iter().copied());
        let mut b = BloomFilter::new(1024, 4);
        for &k in &keys {
            b.insert(k);
        }
        assert_eq!(a, b);
    }
}
