//! Bloom-filter profile digests for the P3Q protocol.
//!
//! In P3Q (Bai et al., EDBT 2010) every user stores, for each neighbour in her
//! personal network and random view, a *digest* of that neighbour's profile:
//! a Bloom filter over the **items** the neighbour has tagged (Section 2.1 of
//! the paper). Digests are exchanged during lazy-mode gossip to cheaply decide
//! whether two users share at least one item before any profile data is
//! transferred (step 1 of Algorithm 1).
//!
//! The paper sizes the filter at 20 Kbit per user, which for the observed
//! average of 249 tagged items per user yields a false-positive rate of about
//! 0.1%. [`BloomFilter::with_paper_parameters`] reproduces that configuration
//! and [`BloomBuilder`] lets callers size a filter for any target
//! false-positive rate.
//!
//! The implementation is self-contained (no third-party hashing crates): it
//! uses the SplitMix64 finalizer as the hash family and the standard
//! Kirsch–Mitzenmacher double-hashing scheme `g_i(x) = h1(x) + i·h2(x)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod filter;
mod hashing;

pub use builder::BloomBuilder;
pub use filter::BloomFilter;
pub use hashing::{hash_pair, mix64};

/// A reference-counted, immutably shared Bloom filter.
///
/// A paper-geometry digest is 20 Kbit (2.5 KB of bit blocks); the gossip
/// stack used to deep-copy one per view entry, per offer and per shuffle.
/// Sharing digests as `Arc<BloomFilter>` turns those copies into reference
/// bumps — a digest is immutable from the moment it is taken.
pub type SharedFilter = std::sync::Arc<BloomFilter>;

/// Default filter size used by the paper's evaluation: 20 Kbit.
pub const PAPER_FILTER_BITS: usize = 20 * 1024;

/// Number of hash functions paired with [`PAPER_FILTER_BITS`].
///
/// The paper targets a 0.1% false-positive rate for profiles of up to 2000
/// items (the 99th-percentile profile size reported in Section 3.3.1); `k = 7`
/// achieves that with a 20 Kbit filter.
pub const PAPER_FILTER_HASHES: u32 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_are_consistent() {
        let f = BloomFilter::with_paper_parameters();
        assert_eq!(f.bit_len(), PAPER_FILTER_BITS);
        assert_eq!(f.num_hashes(), PAPER_FILTER_HASHES);
        // 20 Kbit == 2560 bytes of payload.
        assert_eq!(f.size_bytes(), PAPER_FILTER_BITS / 8);
    }
}
