//! Hashing primitives used by the Bloom filter.
//!
//! The digests in P3Q are built over small fixed-width keys (item
//! identifiers), so a fast integer mixer is sufficient. We use the
//! SplitMix64 finalizer — a well-studied 64-bit avalanche function — seeded
//! twice with independent constants to obtain the two hash values required by
//! Kirsch–Mitzenmacher double hashing.

/// SplitMix64 finalizer: a full-avalanche 64-bit mixing function.
///
/// Every input bit affects every output bit with probability close to 1/2,
/// which is what Bloom filters need from their hash family.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Derives the `(h1, h2)` pair used for double hashing from a 64-bit key.
///
/// `h2` is forced to be odd so that, for power-of-two table sizes, the probe
/// sequence `h1 + i·h2` visits distinct slots; for arbitrary sizes it simply
/// avoids the degenerate `h2 = 0` case.
#[inline]
pub fn hash_pair(key: u64) -> (u64, u64) {
    let h1 = mix64(key);
    let h2 = mix64(key ^ 0xA5A5_A5A5_5A5A_5A5A) | 1;
    (h1, h2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix64_is_deterministic() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }

    #[test]
    fn mix64_zero_is_not_zero() {
        assert_ne!(mix64(0), 0);
    }

    #[test]
    fn hash_pair_second_hash_is_odd() {
        for key in 0..1000u64 {
            let (_, h2) = hash_pair(key);
            assert_eq!(h2 & 1, 1, "h2 must be odd for key {key}");
        }
    }

    #[test]
    fn mix64_has_few_collisions_on_small_domain() {
        let hashes: HashSet<u64> = (0..100_000u64).map(mix64).collect();
        assert_eq!(hashes.len(), 100_000, "mix64 collided on a tiny domain");
    }

    #[test]
    fn low_bits_are_well_distributed() {
        // Bucket sequential keys into 64 buckets by the low 6 bits of the hash
        // and check no bucket is pathologically over-full.
        let mut buckets = [0u32; 64];
        let n = 64_000u64;
        for key in 0..n {
            buckets[(mix64(key) & 63) as usize] += 1;
        }
        let expected = (n / 64) as f64;
        for (i, &count) in buckets.iter().enumerate() {
            let ratio = count as f64 / expected;
            assert!(
                (0.9..1.1).contains(&ratio),
                "bucket {i} has skewed load factor {ratio}"
            );
        }
    }
}
