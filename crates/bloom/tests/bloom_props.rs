//! Property-based tests for the Bloom filter digests.

use p3q_bloom::{BloomBuilder, BloomFilter};
use proptest::prelude::*;

proptest! {
    /// Inserted keys are always reported as present (no false negatives).
    #[test]
    fn prop_no_false_negatives(keys in prop::collection::hash_set(any::<u64>(), 1..300)) {
        let mut f = BloomFilter::new(1 << 13, 5);
        for &k in &keys {
            f.insert(k);
        }
        for &k in &keys {
            prop_assert!(f.contains(k));
        }
    }

    /// Union behaves like inserting the concatenation of both key sets.
    #[test]
    fn prop_union_is_superset(
        left in prop::collection::vec(any::<u64>(), 0..200),
        right in prop::collection::vec(any::<u64>(), 0..200),
    ) {
        let mut a = BloomFilter::new(1 << 12, 4);
        let mut b = BloomFilter::new(1 << 12, 4);
        for &k in &left {
            a.insert(k);
        }
        for &k in &right {
            b.insert(k);
        }
        let mut u = a.clone();
        u.union_with(&b);
        for &k in left.iter().chain(right.iter()) {
            prop_assert!(u.contains(k));
        }
        prop_assert!(u.ones() >= a.ones().max(b.ones()));
    }

    /// The fill ratio never exceeds 1 and is monotone in the number of
    /// insertions.
    #[test]
    fn prop_fill_ratio_monotone(keys in prop::collection::vec(any::<u64>(), 1..500)) {
        let mut f = BloomFilter::new(4096, 3);
        let mut previous = 0.0f64;
        for &k in &keys {
            f.insert(k);
            let ratio = f.fill_ratio();
            prop_assert!(ratio >= previous);
            prop_assert!(ratio <= 1.0);
            previous = ratio;
        }
    }

    /// `intersects` never misses a genuinely shared key.
    #[test]
    fn prop_intersects_is_sound(
        shared in any::<u64>(),
        left in prop::collection::vec(any::<u64>(), 0..100),
        right in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let mut a = BloomFilter::new(1 << 12, 4);
        let mut b = BloomFilter::new(1 << 12, 4);
        for &k in &left {
            a.insert(k);
        }
        for &k in &right {
            b.insert(k);
        }
        a.insert(shared);
        b.insert(shared);
        prop_assert!(a.intersects(&b));
    }

    /// Builder-derived geometry always accommodates the requested capacity
    /// with a measured false-positive rate not wildly above the target.
    #[test]
    fn prop_builder_respects_target(
        n in 10usize..2000,
        // target rates between 0.1% and 10%
        rate_millis in 1u32..100,
    ) {
        let target = rate_millis as f64 / 1000.0;
        let b = BloomBuilder::new(n, target);
        prop_assert!(b.optimal_bits() > 0);
        prop_assert!(b.optimal_hashes() >= 1);
        // The analytical expected rate should be within 2x of the target
        // (rounding of k causes slight deviations).
        prop_assert!(b.expected_fpr() <= target * 2.0 + 1e-9);
    }
}
