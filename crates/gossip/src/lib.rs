//! Generic gossip substrate for the P3Q reproduction.
//!
//! P3Q (Bai et al., EDBT 2010) is built on two classic gossip building
//! blocks: bounded peer views and a random peer-sampling layer. This crate
//! provides both, independent of the tagging data model:
//!
//! * [`ScoredView`] — a bounded, score-ordered view with per-entry staleness
//!   timestamps; the mechanics of P3Q's *personal network* (keep the `s` most
//!   similar peers, gossip with the one not contacted for the longest time);
//! * [`AgedView`] + [`peer_sampling`] — the *random view* and the symmetric
//!   shuffle that maintains it, keeping the overlay connected and feeding
//!   fresh candidates to the similarity layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod peer_sampling;
mod view;

pub use view::{AgedEntry, AgedView, ScoredEntry, ScoredView};
