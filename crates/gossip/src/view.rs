//! Bounded gossip views.
//!
//! P3Q nodes maintain two views (Section 2.1 of the paper):
//!
//! * the **personal network** — the `s` peers with the highest similarity
//!   score, each carrying a score, a profile digest and a gossip timestamp
//!   ("for how many cycles she has not been gossiped with");
//! * the **random view** — `r` peers selected uniformly at random by the
//!   peer-sampling layer, each carrying an age used by the shuffle.
//!
//! [`ScoredView`] implements the former's mechanics (bounded, score-ordered,
//! timestamp-driven partner selection), [`AgedView`] the latter's. Both are
//! generic over the peer identifier and per-entry metadata so that the P3Q
//! crate can attach digests, profiles or anything else without this crate
//! knowing about the tagging data model.

use serde::{Deserialize, Serialize};
use std::hash::Hash;

/// An entry of a [`ScoredView`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoredEntry<P, M> {
    /// The peer.
    pub peer: P,
    /// Its similarity score with the view owner.
    pub score: u64,
    /// Cycles since the owner last gossiped with this peer.
    pub staleness: u32,
    /// Application metadata (digest, cached profile, …).
    pub meta: M,
}

/// A bounded view keeping the `capacity` peers with the highest scores.
///
/// Ties are broken by peer identifier (ascending) so that view contents are
/// deterministic for a given input sequence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoredView<P, M> {
    capacity: usize,
    entries: Vec<ScoredEntry<P, M>>,
}

impl<P: Copy + Eq + Hash + Ord, M> ScoredView<P, M> {
    /// Creates an empty view bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a view needs a positive capacity");
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `peer` is in the view.
    pub fn contains(&self, peer: &P) -> bool {
        self.entries.iter().any(|e| e.peer == *peer)
    }

    /// The entry for `peer`, if any.
    pub fn get(&self, peer: &P) -> Option<&ScoredEntry<P, M>> {
        self.entries.iter().find(|e| e.peer == *peer)
    }

    /// Mutable entry for `peer`, if any.
    pub fn get_mut(&mut self, peer: &P) -> Option<&mut ScoredEntry<P, M>> {
        self.entries.iter_mut().find(|e| e.peer == *peer)
    }

    /// Iterates over entries in descending score order.
    pub fn iter(&self) -> impl Iterator<Item = &ScoredEntry<P, M>> {
        self.entries.iter()
    }

    /// The peers in descending score order.
    pub fn peers(&self) -> impl Iterator<Item = P> + '_ {
        self.entries.iter().map(|e| e.peer)
    }

    /// The `n` best peers (descending score).
    pub fn top_peers(&self, n: usize) -> Vec<P> {
        self.entries.iter().take(n).map(|e| e.peer).collect()
    }

    /// Rank of a peer in the view (0 = highest score), if present.
    pub fn rank_of(&self, peer: &P) -> Option<usize> {
        self.entries.iter().position(|e| e.peer == *peer)
    }

    /// Lowest score currently retained (`None` if the view is empty).
    pub fn min_score(&self) -> Option<u64> {
        self.entries.last().map(|e| e.score)
    }

    /// Inserts or updates a peer.
    ///
    /// * If the peer is already present its score and metadata are replaced
    ///   (the staleness timestamp is preserved).
    /// * Otherwise the peer is inserted with staleness 0; if the view is
    ///   over capacity the lowest-scored entry is evicted.
    ///
    /// Returns `true` if the peer is in the view after the call.
    pub fn upsert(&mut self, peer: P, score: u64, meta: M) -> bool {
        if let Some(entry) = self.get_mut(&peer) {
            entry.score = score;
            entry.meta = meta;
            self.sort();
            return true;
        }
        self.entries.push(ScoredEntry {
            peer,
            score,
            staleness: 0,
            meta,
        });
        self.sort();
        if self.entries.len() > self.capacity {
            self.entries.pop();
        }
        self.contains(&peer)
    }

    /// Removes a peer; returns its entry if it was present.
    pub fn remove(&mut self, peer: &P) -> Option<ScoredEntry<P, M>> {
        let pos = self.entries.iter().position(|e| e.peer == *peer)?;
        Some(self.entries.remove(pos))
    }

    /// Increments every entry's staleness by one — called once per gossip
    /// cycle ("other neighbours increment their timestamps by 1").
    pub fn tick(&mut self) {
        for entry in &mut self.entries {
            entry.staleness = entry.staleness.saturating_add(1);
        }
    }

    /// Read-only peek at the peer [`Self::select_oldest_and_reset`] would
    /// pick — the plan phase of a plan/commit protocol step, where partner
    /// choice happens against immutable state and the staleness reset is
    /// deferred to the commit ([`Self::reset_staleness`]).
    pub fn oldest(&self) -> Option<P> {
        self.oldest_matching(|_| true)
    }

    /// Read-only peek at the stalest entry satisfying `pred` (e.g. "is an
    /// alive remaining-list member"). Returns `None` if nothing matches.
    pub fn oldest_matching(&self, pred: impl Fn(&ScoredEntry<P, M>) -> bool) -> Option<P> {
        self.oldest_matching_with(pred, |e| e.staleness)
    }

    /// Like [`Self::oldest_matching`], but with the staleness of each entry
    /// supplied by `staleness_of` instead of read from the entry — the hook
    /// for plan phases that must overlay pending (not yet committed)
    /// staleness resets on an immutable view. Ties follow the same
    /// deterministic order as every other selection: score (higher first),
    /// then peer id (smaller first).
    pub fn oldest_matching_with(
        &self,
        pred: impl Fn(&ScoredEntry<P, M>) -> bool,
        staleness_of: impl Fn(&ScoredEntry<P, M>) -> u32,
    ) -> Option<P> {
        self.entries
            .iter()
            .filter(|e| pred(e))
            .max_by(|a, b| {
                staleness_of(a)
                    .cmp(&staleness_of(b))
                    .then(a.score.cmp(&b.score))
                    .then(b.peer.cmp(&a.peer))
            })
            .map(|e| e.peer)
    }

    /// Resets a peer's staleness to zero (the commit half of a partner
    /// selection planned via [`Self::oldest`]). Returns `true` if the peer
    /// was present.
    pub fn reset_staleness(&mut self, peer: &P) -> bool {
        match self.get_mut(peer) {
            Some(entry) => {
                entry.staleness = 0;
                true
            }
            None => false,
        }
    }

    /// Selects the peer with the largest staleness (the one the owner has not
    /// gossiped with for the longest time) and resets its staleness to zero.
    ///
    /// Ties are broken by score (higher first) then peer id, so selection is
    /// deterministic. Returns `None` if the view is empty. Equivalent to
    /// [`Self::oldest`] followed by [`Self::reset_staleness`].
    pub fn select_oldest_and_reset(&mut self) -> Option<P> {
        let peer = self.oldest()?;
        self.reset_staleness(&peer);
        Some(peer)
    }

    /// Selects, among an arbitrary candidate set, the member of this view
    /// with the largest staleness, resetting it (Algorithm 3 line 4–6: pick
    /// the remaining-list user with the maximum timestamp). Returns `None`
    /// if no candidate is in the view.
    pub fn select_oldest_among_and_reset(&mut self, candidates: &[P]) -> Option<P> {
        let peer = self.oldest_matching(|e| candidates.contains(&e.peer))?;
        self.reset_staleness(&peer);
        Some(peer)
    }

    fn sort(&mut self) {
        self.entries
            .sort_unstable_by(|a, b| b.score.cmp(&a.score).then(a.peer.cmp(&b.peer)));
    }
}

/// An entry of an [`AgedView`] (random view).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgedEntry<P, M> {
    /// The peer.
    pub peer: P,
    /// Age in cycles since the entry was created by its original owner.
    pub age: u32,
    /// Application metadata (profile digest in P3Q).
    pub meta: M,
}

/// A bounded view of uniformly random peers, maintained by the peer-sampling
/// shuffle ([`crate::peer_sampling`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AgedView<P, M> {
    capacity: usize,
    entries: Vec<AgedEntry<P, M>>,
}

impl<P: Copy + Eq + Hash + Ord, M: Clone> AgedView<P, M> {
    /// Creates an empty view bounded to `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a view needs a positive capacity");
        Self {
            capacity,
            entries: Vec::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `peer` is in the view.
    pub fn contains(&self, peer: &P) -> bool {
        self.entries.iter().any(|e| e.peer == *peer)
    }

    /// Iterates over the entries.
    pub fn iter(&self) -> impl Iterator<Item = &AgedEntry<P, M>> {
        self.entries.iter()
    }

    /// The peers currently in the view.
    pub fn peers(&self) -> impl Iterator<Item = P> + '_ {
        self.entries.iter().map(|e| e.peer)
    }

    /// Adds a peer (no-op if present), evicting the oldest entry when over
    /// capacity.
    pub fn insert(&mut self, peer: P, meta: M) {
        if self.contains(&peer) {
            return;
        }
        self.entries.push(AgedEntry { peer, age: 0, meta });
        if self.entries.len() > self.capacity {
            // Evict the oldest entry.
            if let Some((idx, _)) = self.entries.iter().enumerate().max_by_key(|(_, e)| e.age) {
                self.entries.remove(idx);
            }
        }
    }

    /// Removes a peer; returns `true` if it was present.
    pub fn remove(&mut self, peer: &P) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.peer != *peer);
        self.entries.len() != before
    }

    /// Increments every entry's age.
    pub fn tick(&mut self) {
        for entry in &mut self.entries {
            entry.age = entry.age.saturating_add(1);
        }
    }

    /// Replaces the whole content (used by the shuffle). Truncates to
    /// capacity if needed.
    pub fn replace_with(&mut self, mut entries: Vec<AgedEntry<P, M>>) {
        entries.truncate(self.capacity);
        self.entries = entries;
    }

    /// Clones the current entries (the payload a shuffle sends to the other
    /// side).
    pub fn snapshot(&self) -> Vec<AgedEntry<P, M>> {
        self.entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type V = ScoredView<u32, ()>;

    #[test]
    fn upsert_keeps_best_scores_up_to_capacity() {
        let mut v = V::new(3);
        for (peer, score) in [(1u32, 10u64), (2, 30), (3, 20), (4, 5), (5, 40)] {
            v.upsert(peer, score, ());
        }
        assert_eq!(v.len(), 3);
        let peers: Vec<u32> = v.peers().collect();
        assert_eq!(peers, vec![5, 2, 3]);
        assert_eq!(v.min_score(), Some(20));
        assert!(!v.contains(&4));
    }

    #[test]
    fn upsert_rejects_worse_than_minimum_when_full() {
        let mut v = V::new(2);
        v.upsert(1, 10, ());
        v.upsert(2, 20, ());
        assert!(!v.upsert(3, 5, ()));
        assert_eq!(v.len(), 2);
        assert!(!v.contains(&3));
    }

    #[test]
    fn upsert_updates_existing_score_in_place() {
        let mut v = V::new(2);
        v.upsert(1, 10, ());
        v.upsert(2, 20, ());
        v.upsert(1, 30, ());
        assert_eq!(v.len(), 2);
        assert_eq!(v.rank_of(&1), Some(0));
    }

    #[test]
    fn tick_and_oldest_selection_round_robin() {
        let mut v = V::new(3);
        v.upsert(1, 10, ());
        v.upsert(2, 20, ());
        v.upsert(3, 30, ());
        // After several tick/select rounds every peer must have been selected.
        let mut selected = Vec::new();
        for _ in 0..3 {
            v.tick();
            selected.push(v.select_oldest_and_reset().unwrap());
        }
        selected.sort_unstable();
        assert_eq!(
            selected,
            vec![1, 2, 3],
            "selection must rotate over all peers"
        );
    }

    #[test]
    fn select_among_candidates_only() {
        let mut v = V::new(3);
        v.upsert(1, 10, ());
        v.upsert(2, 20, ());
        v.tick();
        assert_eq!(v.select_oldest_among_and_reset(&[2, 9]), Some(2));
        assert_eq!(v.select_oldest_among_and_reset(&[9]), None);
    }

    #[test]
    fn remove_returns_entry() {
        let mut v = V::new(2);
        v.upsert(7, 1, ());
        let removed = v.remove(&7).unwrap();
        assert_eq!(removed.peer, 7);
        assert!(v.is_empty());
        assert!(v.remove(&7).is_none());
    }

    #[test]
    fn top_peers_truncates() {
        let mut v = V::new(5);
        for p in 0..5u32 {
            v.upsert(p, p as u64, ());
        }
        assert_eq!(v.top_peers(2), vec![4, 3]);
        assert_eq!(v.top_peers(10).len(), 5);
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_rejected() {
        let _ = V::new(0);
    }

    #[test]
    fn aged_view_insert_and_evict() {
        let mut v: AgedView<u32, ()> = AgedView::new(2);
        v.insert(1, ());
        v.tick();
        v.insert(2, ());
        v.insert(3, ()); // evicts the oldest (peer 1, age 1)
        assert_eq!(v.len(), 2);
        assert!(!v.contains(&1));
        assert!(v.contains(&2) && v.contains(&3));
    }

    #[test]
    fn aged_view_insert_is_idempotent() {
        let mut v: AgedView<u32, ()> = AgedView::new(3);
        v.insert(1, ());
        v.insert(1, ());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn aged_view_replace_truncates_to_capacity() {
        let mut v: AgedView<u32, ()> = AgedView::new(2);
        v.replace_with(vec![
            AgedEntry {
                peer: 1,
                age: 0,
                meta: (),
            },
            AgedEntry {
                peer: 2,
                age: 0,
                meta: (),
            },
            AgedEntry {
                peer: 3,
                age: 0,
                meta: (),
            },
        ]);
        assert_eq!(v.len(), 2);
    }
}
