//! Random peer sampling: the bottom gossip layer of P3Q.
//!
//! "The bottom layer, also known as the random peer sampling protocol,
//! maintains the random view of a user: at each cycle, a user u_i sends the r
//! digests to a neighbour v_j picked uniformly at random from her random view
//! and receives r digests from v_j. Then r digests among the 2r digests are
//! randomly selected to form the new random view of u_i. v_j follows the same
//! algorithm." (Section 2.2.1, after Jelasity et al., *Gossip-based peer
//! sampling*.)
//!
//! This layer keeps the overlay connected even when personal networks would
//! otherwise fragment into disjoint interest groups, and continuously exposes
//! fresh candidate neighbours to the similarity layer.

use rand::seq::SliceRandom;
use rand::Rng;
use std::hash::Hash;

use crate::view::{AgedEntry, AgedView};

/// Picks a uniformly random gossip partner from a random view.
///
/// Returns `None` if the view is empty.
pub fn pick_partner<P, M, R>(view: &AgedView<P, M>, rng: &mut R) -> Option<P>
where
    P: Copy + Eq + Hash + Ord,
    M: Clone,
    R: Rng + ?Sized,
{
    let peers: Vec<P> = view.peers().collect();
    peers.choose(rng).copied()
}

/// Builds the payload one side ships in a shuffle: its current view entries
/// plus a fresh (age 0) descriptor of itself.
///
/// This is the *plan* half of a plan/commit shuffle — it only reads the
/// view, so it can run against shared immutable state.
pub fn shuffle_payload<P, M>(
    view: &AgedView<P, M>,
    self_id: P,
    self_meta: M,
) -> Vec<AgedEntry<P, M>>
where
    P: Copy + Eq + Hash + Ord,
    M: Clone,
{
    let mut payload = view.snapshot();
    payload.push(AgedEntry {
        peer: self_id,
        age: 0,
        meta: self_meta,
    });
    payload
}

/// Absorbs a received shuffle payload into a view: merges it with the
/// current entries, strips self-references and duplicates (keeping the
/// youngest copy) and keeps a uniformly random subset of at most `capacity`
/// entries. The *commit* half of a plan/commit shuffle.
pub fn absorb_shuffle<P, M, R>(
    view: &mut AgedView<P, M>,
    self_id: P,
    received: &[AgedEntry<P, M>],
    rng: &mut R,
) where
    P: Copy + Eq + Hash + Ord,
    M: Clone,
    R: Rng + ?Sized,
{
    let merged = select_random_subset(view.snapshot(), received, self_id, view.capacity(), rng);
    view.replace_with(merged);
}

/// Performs one symmetric peer-sampling exchange between the views of two
/// live nodes.
///
/// Both sides contribute a fresh descriptor of themselves (`a_self`,
/// `b_self`), receive the other side's current entries and keep a uniformly
/// random subset of the union (minus themselves, minus duplicates), exactly
/// as in the paper's description. Entry ages are incremented by the caller
/// ([`AgedView::tick`]) once per cycle, not here. Composed from
/// [`shuffle_payload`] and [`absorb_shuffle`].
pub fn shuffle<P, M, R>(
    a_id: P,
    a_view: &mut AgedView<P, M>,
    b_id: P,
    b_view: &mut AgedView<P, M>,
    a_self: M,
    b_self: M,
    rng: &mut R,
) where
    P: Copy + Eq + Hash + Ord,
    M: Clone,
    R: Rng + ?Sized,
{
    let a_payload = shuffle_payload(a_view, a_id, a_self);
    let b_payload = shuffle_payload(b_view, b_id, b_self);
    absorb_shuffle(a_view, a_id, &b_payload, rng);
    absorb_shuffle(b_view, b_id, &a_payload, rng);
}

/// Merges own entries with the received payload, removes self-references and
/// duplicates (keeping the youngest copy), and keeps a uniformly random
/// subset of at most `capacity` entries.
fn select_random_subset<P, M, R>(
    own: Vec<AgedEntry<P, M>>,
    received: &[AgedEntry<P, M>],
    self_id: P,
    capacity: usize,
    rng: &mut R,
) -> Vec<AgedEntry<P, M>>
where
    P: Copy + Eq + Hash + Ord,
    M: Clone,
    R: Rng + ?Sized,
{
    let mut pool: Vec<AgedEntry<P, M>> = own;
    pool.extend(received.iter().cloned());
    pool.retain(|e| e.peer != self_id);
    // Deduplicate, keeping the youngest descriptor of each peer.
    pool.sort_by(|a, b| a.peer.cmp(&b.peer).then(a.age.cmp(&b.age)));
    pool.dedup_by(|later, earlier| later.peer == earlier.peer);
    pool.shuffle(rng);
    pool.truncate(capacity);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view_with(capacity: usize, peers: &[u32]) -> AgedView<u32, ()> {
        let mut v = AgedView::new(capacity);
        for &p in peers {
            v.insert(p, ());
        }
        v
    }

    #[test]
    fn pick_partner_from_empty_view_is_none() {
        let v: AgedView<u32, ()> = AgedView::new(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(pick_partner(&v, &mut rng).is_none());
    }

    #[test]
    fn pick_partner_returns_a_member() {
        let v = view_with(4, &[1, 2, 3]);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let p = pick_partner(&v, &mut rng).unwrap();
            assert!(v.contains(&p));
        }
    }

    #[test]
    fn shuffle_never_inserts_self() {
        let mut a = view_with(3, &[2, 3]);
        let mut b = view_with(3, &[1, 4]);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            shuffle(1u32, &mut a, 2u32, &mut b, (), (), &mut rng);
            assert!(!a.contains(&1), "a must never contain itself");
            assert!(!b.contains(&2), "b must never contain itself");
            assert!(a.len() <= a.capacity());
            assert!(b.len() <= b.capacity());
        }
    }

    #[test]
    fn shuffle_spreads_descriptors_both_ways() {
        let mut a = view_with(4, &[10, 11]);
        let mut b = view_with(4, &[20, 21]);
        let mut rng = StdRng::seed_from_u64(1);
        shuffle(1u32, &mut a, 2u32, &mut b, (), (), &mut rng);
        // With capacity 4 and a pool of at most 5 candidates, each side keeps
        // almost everything: both must have learned something from the other.
        let a_peers: Vec<u32> = a.peers().collect();
        let b_peers: Vec<u32> = b.peers().collect();
        assert!(
            a_peers.iter().any(|p| [2, 20, 21].contains(p)),
            "a learned nothing: {a_peers:?}"
        );
        assert!(
            b_peers.iter().any(|p| [1, 10, 11].contains(p)),
            "b learned nothing: {b_peers:?}"
        );
    }

    #[test]
    fn shuffle_deduplicates_shared_peers() {
        let mut a = view_with(6, &[5, 6]);
        let mut b = view_with(6, &[5, 6]);
        let mut rng = StdRng::seed_from_u64(2);
        shuffle(1u32, &mut a, 2u32, &mut b, (), (), &mut rng);
        let mut a_peers: Vec<u32> = a.peers().collect();
        a_peers.sort_unstable();
        let before = a_peers.len();
        a_peers.dedup();
        assert_eq!(a_peers.len(), before, "views must not contain duplicates");
    }

    #[test]
    fn repeated_shuffles_keep_views_full() {
        // In a 4-node clique the views must stay at capacity.
        let mut views: Vec<AgedView<u32, ()>> =
            (0..4u32).map(|i| view_with(2, &[(i + 1) % 4])).collect();
        let mut rng = StdRng::seed_from_u64(3);
        for round in 0..30 {
            let a = (round % 4) as usize;
            let partner = pick_partner(&views[a], &mut rng).unwrap_or(((a + 1) % 4) as u32);
            let b = partner as usize;
            if a == b {
                continue;
            }
            let (left, right) = if a < b {
                let (l, r) = views.split_at_mut(b);
                (&mut l[a], &mut r[0])
            } else {
                let (l, r) = views.split_at_mut(a);
                (&mut r[0], &mut l[b])
            };
            shuffle(a as u32, left, b as u32, right, (), (), &mut rng);
        }
        for (i, v) in views.iter().enumerate() {
            assert!(!v.is_empty(), "view {i} starved");
        }
    }
}
