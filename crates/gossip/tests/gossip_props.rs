//! Property-based tests of the gossip views and the peer-sampling shuffle.

use p3q_gossip::{peer_sampling, AgedView, ScoredView};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// A scored view never exceeds its capacity and stays sorted by
    /// descending score, whatever the insertion/update sequence.
    #[test]
    fn prop_scored_view_bounded_and_sorted(
        capacity in 1usize..12,
        inserts in prop::collection::vec((0u32..64, 0u64..1000), 0..100),
    ) {
        let mut view: ScoredView<u32, ()> = ScoredView::new(capacity);
        for &(peer, score) in &inserts {
            view.upsert(peer, score, ());
        }
        prop_assert!(view.len() <= capacity);
        let scores: Vec<u64> = view.iter().map(|e| e.score).collect();
        for pair in scores.windows(2) {
            prop_assert!(pair[0] >= pair[1]);
        }
    }

    /// When every peer is inserted exactly once (scores never downgraded —
    /// the P3Q case, where similarity only grows), the view retains exactly
    /// the `capacity` best-scored peers.
    #[test]
    fn prop_scored_view_keeps_the_best_of_unique_inserts(
        capacity in 1usize..12,
        inserts in prop::collection::hash_map(0u32..64, 1u64..1000, 0..40),
    ) {
        let mut view: ScoredView<u32, ()> = ScoredView::new(capacity);
        for (&peer, &score) in &inserts {
            view.upsert(peer, score, ());
        }
        prop_assert!(view.len() <= capacity);
        if view.len() == capacity {
            let retained: std::collections::HashSet<u32> = view.peers().collect();
            let min_retained = view.min_score().unwrap_or(0);
            for (&peer, &score) in &inserts {
                if !retained.contains(&peer) {
                    prop_assert!(score <= min_retained);
                }
            }
        }
    }

    /// Repeated tick/select cycles visit every peer of a scored view
    /// (fair, timestamp-driven partner selection).
    #[test]
    fn prop_oldest_selection_is_fair(peers in prop::collection::hash_set(0u32..50, 1..10)) {
        let peers: Vec<u32> = peers.into_iter().collect();
        let mut view: ScoredView<u32, ()> = ScoredView::new(peers.len());
        for &p in &peers {
            view.upsert(p, 10, ());
        }
        let mut selected = Vec::new();
        for _ in 0..peers.len() {
            view.tick();
            selected.push(view.select_oldest_and_reset().unwrap());
        }
        selected.sort_unstable();
        let mut expected = peers.clone();
        expected.sort_unstable();
        prop_assert_eq!(selected, expected);
    }

    /// The peer-sampling shuffle never introduces self-references or
    /// duplicates and never exceeds the view capacity.
    #[test]
    fn prop_shuffle_invariants(
        seed in 0u64..1000,
        a_peers in prop::collection::hash_set(2u32..40, 0..8),
        b_peers in prop::collection::hash_set(2u32..40, 0..8),
        rounds in 1usize..8,
    ) {
        let mut a: AgedView<u32, ()> = AgedView::new(5);
        let mut b: AgedView<u32, ()> = AgedView::new(5);
        for p in a_peers {
            a.insert(p, ());
        }
        for p in b_peers {
            b.insert(p, ());
        }
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..rounds {
            a.tick();
            b.tick();
            peer_sampling::shuffle(0u32, &mut a, 1u32, &mut b, (), (), &mut rng);
            for (view, own) in [(&a, 0u32), (&b, 1u32)] {
                prop_assert!(view.len() <= view.capacity());
                prop_assert!(!view.contains(&own));
                let mut peers: Vec<u32> = view.peers().collect();
                let before = peers.len();
                peers.sort_unstable();
                peers.dedup();
                prop_assert_eq!(peers.len(), before, "duplicate peers after shuffle");
            }
        }
        // After at least one shuffle with a non-empty counterpart, each side
        // knows the other (they exchanged fresh self-descriptors) unless its
        // view filled up with other peers.
        if a.len() < a.capacity() {
            prop_assert!(a.contains(&1) || b.is_empty());
        }
    }
}
