//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **α sweep** — end-to-end eager cycles needed per α (Theorem 2.2 says
//!   α = 0.5 is optimal);
//! * **digest pre-filtering** — the "do we share an item?" decision with the
//!   Bloom digest (step 1 of Algorithm 1) vs. a full profile intersection;
//! * **Bloom-filter size** — digest construction cost and false-positive
//!   rate for several filter sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use p3q::baseline::IdealNetworks;
use p3q::config::P3qConfig;
use p3q::eager::issue_query;
use p3q::experiment::{build_simulator_with_budgets, init_ideal_networks};
use p3q::query::QueryId;
use p3q_bloom::BloomFilter;
use p3q_sim::RunOptions;
use p3q_trace::{QueryGenerator, TraceConfig, TraceGenerator, UserId};

/// Small world shared by the end-to-end ablations.
struct SmallWorld {
    trace: p3q_trace::SyntheticTrace,
    ideal: IdealNetworks,
    queries: Vec<p3q_trace::Query>,
}

fn small_world() -> SmallWorld {
    let mut cfg = TraceConfig::tiny(11);
    cfg.num_users = 120;
    let trace = TraceGenerator::new(cfg).generate();
    let ideal = IdealNetworks::compute(&trace.dataset, 50);
    let queries = QueryGenerator::new(1)
        .one_query_per_user(&trace.dataset)
        .into_iter()
        .filter(|q| !ideal.network_of(q.querier).is_empty())
        .take(10)
        .collect();
    SmallWorld {
        trace,
        ideal,
        queries,
    }
}

fn alpha_sweep(c: &mut Criterion) {
    let world = small_world();
    let mut group = c.benchmark_group("ablation/alpha_sweep");
    group.sample_size(10);
    for alpha in [0.1f64, 0.5, 0.9] {
        group.bench_with_input(
            BenchmarkId::from_parameter(alpha),
            &alpha,
            |bencher, &alpha| {
                bencher.iter(|| {
                    let mut cfg = P3qConfig::tiny().with_alpha(alpha);
                    cfg.personal_network_size = 50;
                    let budgets = vec![2usize; world.trace.dataset.num_users()];
                    let mut sim =
                        build_simulator_with_budgets(&world.trace.dataset, &cfg, &budgets, 3);
                    init_ideal_networks(&mut sim, &world.ideal);
                    for (i, query) in world.queries.iter().enumerate() {
                        issue_query(
                            &mut sim,
                            query.querier.index(),
                            QueryId(i as u64),
                            query.clone(),
                            &cfg,
                        );
                    }
                    black_box(sim.drive(&cfg.eager(), RunOptions::until_complete(40), |_, _| {}))
                })
            },
        );
    }
    group.finish();
}

fn digest_prefilter(c: &mut Criterion) {
    // Compare the cost of deciding "do these two users share an item?" with
    // the Bloom digest (step 1 of Algorithm 1) against a full profile
    // intersection — the saving that justifies shipping digests instead of
    // profiles.
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(5)).generate();
    let a = trace.dataset.profile(UserId(0));
    let b = trace.dataset.profile(UserId(1));
    let digest_b = b.paper_digest();
    let mut group = c.benchmark_group("ablation/digest_prefilter");
    group.bench_function("bloom_probe", |bencher| {
        bencher.iter(|| {
            a.items()
                .any(|item| digest_b.contains(black_box(item.as_key())))
        })
    });
    group.bench_function("full_intersection", |bencher| {
        bencher.iter(|| black_box(a.shares_item_with(b)))
    });
    group.finish();
}

fn bloom_sizes(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(6)).generate();
    let profile = trace.dataset.profile(UserId(0));
    let mut group = c.benchmark_group("ablation/bloom_size");
    for bits in [2 * 1024usize, 8 * 1024, 20 * 1024] {
        group.bench_with_input(
            BenchmarkId::from_parameter(bits),
            &bits,
            |bencher, &bits| {
                bencher.iter(|| {
                    let filter =
                        BloomFilter::from_keys(bits, 7, profile.items().map(|i| i.as_key()));
                    black_box(filter.false_positive_rate())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, alpha_sweep, digest_prefilter, bloom_sizes);
criterion_main!(benches);
