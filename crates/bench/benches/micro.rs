//! Criterion micro-benchmarks of the P3Q building blocks: similarity
//! scoring, Bloom-filter digests, partial-result construction, the
//! incremental NRA and one full gossip exchange.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use p3q::baseline::IdealNetworks;
use p3q::config::P3qConfig;
use p3q::experiment::{build_simulator_with_budgets, init_ideal_networks};
use p3q::lazy::{collect_offers, process_offers};
use p3q::scoring::{partial_result_list, similarity};
use p3q_topk::{IncrementalNra, PartialResultList};
use p3q_trace::{ItemId, QueryGenerator, TraceConfig, TraceGenerator};

fn bench_similarity(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(1)).generate();
    let a = trace.dataset.profile(p3q_trace::UserId(0));
    let b = trace.dataset.profile(p3q_trace::UserId(1));
    c.bench_function("similarity/common_actions", |bencher| {
        bencher.iter(|| similarity(black_box(a), black_box(b)))
    });
}

fn bench_digest(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(2)).generate();
    let profile = trace.dataset.profile(p3q_trace::UserId(0));
    let mut group = c.benchmark_group("bloom_digest");
    for bits in [4 * 1024usize, 20 * 1024] {
        group.bench_with_input(BenchmarkId::new("build", bits), &bits, |bencher, &bits| {
            bencher.iter(|| profile.digest(black_box(bits), 7))
        });
    }
    let digest = profile.digest(20 * 1024, 7);
    group.bench_function("probe", |bencher| {
        bencher.iter(|| digest.contains(black_box(ItemId(42).as_key())))
    });
    group.finish();
}

fn bench_partial_results(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(3)).generate();
    let queries = QueryGenerator::new(3).one_query_per_user(&trace.dataset);
    let query = &queries[0];
    let profiles: Vec<_> = (0..20)
        .map(|i| trace.dataset.profile(p3q_trace::UserId(i)))
        .collect();
    c.bench_function("scoring/partial_result_list_20_profiles", |bencher| {
        bencher.iter(|| partial_result_list(profiles.iter().copied(), black_box(query)))
    });
}

fn bench_incremental_nra(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let lists: Vec<PartialResultList<u32>> = (0..50)
        .map(|_| {
            use rand::Rng;
            PartialResultList::from_scores(
                (0..100).map(|_| (rng.gen_range(0u32..500), rng.gen_range(1u32..20))),
            )
        })
        .collect();
    c.bench_function("nra/50_lists_top10", |bencher| {
        bencher.iter(|| {
            let mut nra = IncrementalNra::new();
            for list in &lists {
                nra.push_list(list.clone());
            }
            black_box(nra.topk(10))
        })
    });
}

fn bench_gossip_exchange(c: &mut Criterion) {
    let trace = TraceGenerator::new(TraceConfig::laptop_scale(4)).generate();
    let cfg = P3qConfig::laptop_scale();
    let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
    let budgets = vec![10usize; trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&trace.dataset, &cfg, &budgets, 5);
    init_ideal_networks(&mut sim, &ideal);
    let offers = {
        let mut rng = StdRng::seed_from_u64(1);
        collect_offers(sim.node(1), cfg.profiles_per_gossip, &mut rng)
    };
    c.bench_function("lazy/process_offers_10_profiles", |bencher| {
        bencher.iter_batched(
            || sim.node(0).clone(),
            |mut node| black_box(process_offers(&mut node, &offers)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_similarity,
    bench_digest,
    bench_partial_results,
    bench_incremental_nra,
    bench_gossip_exchange
);
criterion_main!(benches);
