//! Figure 8 — Number of users reached by a query, for the two heterogeneous
//! storage scenarios.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig8_users_reached -- --users 1000 --queries 200
//! ```

use p3q::prelude::*;
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::DistributionSummary;

fn reached_per_query(
    world: &World,
    storage: StorageDistribution,
    queries: &[Query],
    seed: u64,
    max_cycles: u64,
) -> Vec<f64> {
    let cfg = &world.cfg;
    let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, seed);
    init_ideal_networks(&mut sim, &world.ideal);
    for (i, query) in queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim.drive(
        &cfg.eager(),
        RunOptions::until_complete(max_cycles),
        |_, _| {},
    );
    queries
        .iter()
        .enumerate()
        .map(|(i, query)| {
            sim.node(query.querier.index())
                .querier_states
                .get(&QueryId(i as u64))
                .map(|s| s.reached_users.len() as f64)
                .unwrap_or(0.0)
        })
        .collect()
}

fn main() {
    let args = HarnessArgs::parse(40);
    println!("=== Figure 8: number of users reached by a query ===");
    let world = World::build(&args);
    let queries = world.sample_queries(args.queries);
    println!("users {}, tracked queries {}", args.users, queries.len());

    let mut rows = Vec::new();
    let mut distributions = Vec::new();
    for storage in [
        StorageDistribution::poisson_lambda_1(),
        StorageDistribution::poisson_lambda_4(),
    ] {
        eprintln!("  running {} …", storage.label());
        let reached = reached_per_query(&world, storage, &queries, args.seed, args.cycles);
        let summary = DistributionSummary::of(&reached);
        rows.push(vec![
            storage.label(),
            fmt(summary.mean),
            fmt(summary.median),
            fmt(summary.p90),
            fmt(summary.max),
        ]);
        distributions.push((storage.label(), reached));
    }
    print_table(&["scenario", "mean", "median", "p90", "max"], &rows);

    println!();
    println!("per-query profile (ranked by users reached, descending):");
    let header = ["rank", "λ=1", "λ=4"];
    let mut sorted: Vec<Vec<f64>> = distributions
        .iter()
        .map(|(_, values)| {
            let mut v = values.clone();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v
        })
        .collect();
    if sorted.len() < 2 {
        sorted.resize(2, Vec::new());
    }
    let len = sorted[0].len();
    let rows: Vec<Vec<String>> = (0..len)
        .step_by((len / 20).max(1))
        .map(|rank| {
            vec![
                rank.to_string(),
                fmt(sorted[0].get(rank).copied().unwrap_or(0.0)),
                fmt(sorted[1].get(rank).copied().unwrap_or(0.0)),
            ]
        })
        .collect();
    print_table(&header, &rows);

    println!();
    println!(
        "paper shape: queries reach far fewer users when storage is plentiful (paper: 256 \
         users on average for λ=1 vs 75 for λ=4), because each reached user resolves more \
         of the remaining list at once."
    );
}
