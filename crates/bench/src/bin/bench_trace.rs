//! Trace-generator benchmark and determinism checker: wall-clock of the
//! parallel generator (per worker-thread count) against the retained
//! sequential reference, with a content checksum asserted byte-identical
//! across every mode — and, in `--check` mode, the CI gate that regenerates
//! a trace plus its scenario schedule under several thread counts and fails
//! on any divergence.
//!
//! Emits `BENCH_trace.json` in the working directory so generator
//! throughput is tracked from PR to PR. The file records the host's
//! available parallelism: on a single-core container the "parallel" numbers
//! measure fan-out overhead (the chunked path must be no slower than the
//! reference), while real speedup is harvested on multi-core hosts — safe,
//! because thread count provably cannot change the bytes.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_trace [-- OPTIONS]
//!     --users a,b      population scales     (default 10000,100000)
//!     --threads a,b    thread counts to time (default 1,2,4,8)
//!     --seed N         master seed           (default 42)
//!     --scenario NAME  workload preset       (default paper-delicious)
//!     --check          determinism mode: compare all modes, print checksums
//!     --out PATH       output path           (default BENCH_trace.json)
//! ```

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use p3q_sim::Fnv;
use p3q_trace::{Scenario, ScenarioConfig, ScenarioEvent, SyntheticTrace, TraceGenerator};

struct Args {
    users: Vec<usize>,
    threads: Vec<usize>,
    seed: u64,
    scenario: Scenario,
    check: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: vec![10_000, 100_000],
        threads: vec![1, 2, 4, 8],
        seed: 42,
        scenario: Scenario::PaperDelicious,
        check: false,
        out: "BENCH_trace.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let parse_list = |value: String, name: &str| -> Vec<usize> {
        value
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} wants integers"))
            })
            .collect()
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => args.users = parse_list(value("--users"), "--users"),
            "--threads" => args.threads = parse_list(value("--threads"), "--threads"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--scenario" => args.scenario = Scenario::from_flag(&value("--scenario")),
            "--check" => args.check = true,
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Content checksum of a trace: the latent world plus every profile byte.
fn trace_checksum(trace: &SyntheticTrace) -> u64 {
    let mut h = Fnv::new();
    for &topic in &trace.world.item_topic {
        h.write_u64(topic as u64);
    }
    for tags in &trace.world.item_tags {
        h.write_u64(tags.len() as u64);
        for tag in tags {
            h.write_u64(tag.as_key());
        }
    }
    for topics in &trace.world.user_topics {
        h.write_u64(topics.len() as u64);
        for &t in topics {
            h.write_u64(t as u64);
        }
    }
    for (user, profile) in trace.dataset.iter() {
        h.write_u64(user.as_key());
        h.write_u64(profile.len() as u64);
        for action in profile.iter() {
            h.write_u64(action.item.as_key());
            h.write_u64(action.tag.as_key());
        }
    }
    h.finish()
}

/// Content checksum of a scenario schedule (batches and departures).
fn schedule_checksum(schedule: &[(u64, ScenarioEvent)]) -> u64 {
    let mut h = Fnv::new();
    for (cycle, event) in schedule {
        h.write_u64(*cycle);
        match event {
            ScenarioEvent::ProfileChanges(batch) => {
                h.write_u64(batch.len() as u64);
                for change in &batch.changes {
                    h.write_u64(change.user.as_key());
                    for action in &change.new_actions {
                        h.write_u64(action.item.as_key());
                        h.write_u64(action.tag.as_key());
                    }
                }
            }
            ScenarioEvent::MassDeparture(fraction) => {
                h.write_u64(u64::MAX);
                h.write_u64(fraction.to_bits());
            }
        }
    }
    h.finish()
}

struct ModeResult {
    label: String,
    elapsed_s: f64,
    speedup_vs_reference: f64,
    checksum: u64,
}

struct ScaleResult {
    users: usize,
    total_actions: usize,
    checksum: u64,
    /// Resident bytes of the decoded profile store (8 bytes per action)...
    bytes_profiles_decoded: usize,
    /// ...the same profiles in the packed columnar at-rest form...
    bytes_profiles_packed: usize,
    /// ...and the interned action dictionary built over the trace.
    bytes_dictionary: usize,
    modes: Vec<ModeResult>,
}

fn bench_scale(users: usize, args: &Args) -> ScaleResult {
    eprintln!("== {users} users ==");
    let scenario = ScenarioConfig::new(args.scenario, users, args.seed);
    let generator = TraceGenerator::new(scenario.trace_config());

    let start = Instant::now();
    let reference = generator.generate_reference();
    let reference_elapsed = start.elapsed().as_secs_f64();
    let reference_checksum = trace_checksum(&reference);
    let total_actions = reference.dataset.total_actions();
    let bytes_profiles_decoded = reference.dataset.profile_heap_bytes();
    let bytes_profiles_packed = reference.dataset.packed_profile_bytes();
    let bytes_dictionary = reference.dataset.action_dictionary().heap_bytes();
    drop(reference);
    eprintln!(
        "   sequential_reference     {reference_elapsed:>6.2} s  ({total_actions} actions, \
         checksum {reference_checksum:#018x})"
    );
    eprintln!(
        "   profile storage: {:.1} MiB decoded, {:.1} MiB packed, {:.1} MiB dictionary",
        bytes_profiles_decoded as f64 / (1 << 20) as f64,
        bytes_profiles_packed as f64 / (1 << 20) as f64,
        bytes_dictionary as f64 / (1 << 20) as f64,
    );

    let mut modes = vec![ModeResult {
        label: "sequential_reference".to_string(),
        elapsed_s: reference_elapsed,
        speedup_vs_reference: 1.0,
        checksum: reference_checksum,
    }];
    for &threads in &args.threads {
        let start = Instant::now();
        let trace = generator.generate_with_threads(threads);
        let elapsed = start.elapsed().as_secs_f64();
        let checksum = trace_checksum(&trace);
        drop(trace);
        let speedup = reference_elapsed / elapsed;
        eprintln!(
            "   parallel_{threads}_threads       {elapsed:>6.2} s  ({speedup:.2}x vs reference)"
        );
        assert_eq!(
            checksum, reference_checksum,
            "parallel generation with {threads} threads diverged from the reference"
        );
        modes.push(ModeResult {
            label: format!("parallel_{threads}_threads"),
            elapsed_s: elapsed,
            speedup_vs_reference: speedup,
            checksum,
        });
    }

    ScaleResult {
        users,
        total_actions,
        checksum: reference_checksum,
        bytes_profiles_decoded,
        bytes_profiles_packed,
        bytes_dictionary,
        modes,
    }
}

/// The CI determinism gate: regenerate trace + scenario schedule under
/// every requested thread count and fail loudly on checksum divergence.
fn check_scale(users: usize, args: &Args) {
    println!(
        "== determinism check: {users} users, scenario {} ==",
        args.scenario.name()
    );
    let scenario = ScenarioConfig::new(args.scenario, users, args.seed);
    let generator = TraceGenerator::new(scenario.trace_config());

    let reference = generator.generate_reference();
    let reference_checksum = trace_checksum(&reference);
    let reference_schedule = schedule_checksum(
        &scenario
            .dynamics_plan()
            .materialize_with_threads(&reference, 1),
    );
    println!(
        "   reference: trace {reference_checksum:#018x}, schedule {reference_schedule:#018x} \
         ({} actions)",
        reference.dataset.total_actions()
    );
    drop(reference);

    let mut failures = 0usize;
    for &threads in &args.threads {
        let workload = scenario.build_with_threads(threads);
        let trace = trace_checksum(&workload.trace);
        let schedule = schedule_checksum(&workload.schedule);
        let trace_ok = trace == reference_checksum;
        let schedule_ok = schedule == reference_schedule;
        println!(
            "   threads {threads}: trace {trace:#018x} [{}], schedule {schedule:#018x} [{}]",
            if trace_ok { "ok" } else { "DIVERGED" },
            if schedule_ok { "ok" } else { "DIVERGED" },
        );
        failures += usize::from(!trace_ok) + usize::from(!schedule_ok);
    }
    if failures > 0 {
        eprintln!("{failures} checksum divergence(s) — trace generation is not deterministic");
        std::process::exit(1);
    }
    println!("   all modes byte-identical");
}

fn main() {
    let args = parse_args();
    let host_parallelism = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!("host parallelism: {host_parallelism} core(s)");

    if args.check {
        for &users in &args.users {
            check_scale(users, &args);
        }
        return;
    }

    let results: Vec<ScaleResult> = args.users.iter().map(|&u| bench_scale(u, &args)).collect();

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"trace\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"scenario\": \"{}\",", args.scenario.name());
    let _ = writeln!(
        json,
        "  \"host_available_parallelism\": {host_parallelism},"
    );
    let _ = writeln!(
        json,
        "  \"note\": \"synthetic trace generation wall-clock; all modes byte-identical \
         (checksum-asserted); on a 1-core host the parallel numbers measure fan-out overhead, \
         not speedup\","
    );
    json.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"total_actions\": {},", r.total_actions);
        let _ = writeln!(json, "      \"trace_checksum\": \"{:#018x}\",", r.checksum);
        let _ = writeln!(
            json,
            "      \"bytes_profiles_decoded\": {},",
            r.bytes_profiles_decoded
        );
        let _ = writeln!(
            json,
            "      \"bytes_profiles_packed\": {},",
            r.bytes_profiles_packed
        );
        let _ = writeln!(json, "      \"bytes_dictionary\": {},", r.bytes_dictionary);
        json.push_str("      \"modes\": [\n");
        for (j, m) in r.modes.iter().enumerate() {
            json.push_str("        {\n");
            let _ = writeln!(json, "          \"mode\": \"{}\",", m.label);
            let _ = writeln!(json, "          \"elapsed_s\": {:.3},", m.elapsed_s);
            let _ = writeln!(
                json,
                "          \"speedup_vs_reference\": {:.3},",
                m.speedup_vs_reference
            );
            let _ = writeln!(
                json,
                "          \"trace_checksum\": \"{:#018x}\"",
                m.checksum
            );
            json.push_str("        }");
            json.push_str(if j + 1 < r.modes.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("writing the benchmark output");
    eprintln!("wrote {}", args.out);
}
