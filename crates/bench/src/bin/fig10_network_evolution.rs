//! Figure 10 — Personal-network evolution under the lazy mode: the fraction
//! of users (among those whose ideal network changed) that have discovered
//! *all* of their new ideal neighbours, per lazy cycle.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig10_network_evolution -- --users 1000 --cycles 100
//! ```

use p3q::prelude::*;
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::SeriesRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything this figure does on the cycle axis, as scheduled events: the
/// day of profile changes lands at cycle 0, and the refresh ratio is
/// sampled at fixed cycles — no hand-rolled "if cycle % n == 0" logic in
/// the run loop.
enum Fig10Event<'a> {
    ApplyChanges(&'a p3q_trace::ChangeBatch),
    Sample,
}

fn run_scenario(
    world: &World,
    new_ideal: &IdealNetworks,
    batch: &p3q_trace::ChangeBatch,
    label: &str,
    storage: StorageDistribution,
    args: &HarnessArgs,
    recorder: &mut SeriesRecorder,
) {
    let cfg = &world.cfg;
    let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, args.seed);
    // Personal networks start at the *old* ideal state (converged before the
    // changes happen).
    init_ideal_networks(&mut sim, &world.ideal);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x10_10);
    bootstrap_random_views(&mut sim, cfg, &mut rng);

    let sample_every = (args.cycles / 20).max(1);
    let mut events = EventQueue::new();
    // The change batch fires before the first cycle; the cycle-0 sample is
    // scheduled after it (FIFO within a cycle), so it sees the post-change,
    // pre-gossip state, exactly like the paper's measurement.
    events.schedule(0, Fig10Event::ApplyChanges(batch));
    for cycle in (0..=args.cycles).step_by(sample_every as usize) {
        events.schedule(cycle, Fig10Event::Sample);
    }
    if !args.cycles.is_multiple_of(sample_every) {
        events.schedule(args.cycles, Fig10Event::Sample);
    }
    sim.drive(
        &cfg.lazy(),
        RunOptions::cycles(args.cycles).events(&mut events),
        |sim, event| match event {
            RunEvent::Scheduled(Fig10Event::ApplyChanges(batch)) => {
                apply_profile_changes(sim, batch);
            }
            RunEvent::Scheduled(Fig10Event::Sample) => recorder.record(
                label,
                sim.cycle(),
                network_refresh_ratio(sim.nodes(), &world.ideal, new_ideal) * 100.0,
            ),
            RunEvent::CycleEnd(_) => {}
        },
    );
    eprintln!(
        "  {label}: {:.1}% of affected users fully refreshed after {} cycles",
        recorder.last(label).unwrap_or(0.0),
        args.cycles
    );
}

fn main() {
    let args = HarnessArgs::parse(100);
    println!("=== Figure 10: discovery of new ideal neighbours in lazy mode ===");
    let world = World::build(&args);
    println!("users {}, cycles {}", args.users, args.cycles);

    // A day of profile changes shifts some users' ideal networks. The new
    // ideal state is derived incrementally: patch the action index with the
    // batch's deltas and re-score only the affected users, instead of
    // recomputing every personal network from scratch.
    let batch =
        DynamicsGenerator::new(DynamicsConfig::paper_day(args.seed ^ 0xDA7)).generate(&world.trace);
    let (new_ideal, dirty) = world.incremental_ideal_after(&batch);
    println!(
        "incremental ideal-network refresh: {} of {} users re-scored",
        dirty.len(),
        args.users
    );

    // How many users does the change actually affect?
    let affected = world
        .trace
        .dataset
        .users()
        .filter(|&u| {
            let old: std::collections::HashSet<UserId> =
                world.ideal.neighbours_of(u).into_iter().collect();
            new_ideal.neighbours_of(u).iter().any(|n| !old.contains(n))
        })
        .count();
    println!(
        "{} changing users cause {} users to need new personal-network neighbours",
        batch.len(),
        affected
    );

    let mut recorder = SeriesRecorder::new();
    run_scenario(
        &world,
        &new_ideal,
        &batch,
        "poisson λ=1",
        StorageDistribution::poisson_lambda_1(),
        &args,
        &mut recorder,
    );
    run_scenario(
        &world,
        &new_ideal,
        &batch,
        "poisson λ=4",
        StorageDistribution::poisson_lambda_4(),
        &args,
        &mut recorder,
    );

    let names = recorder.names();
    let header: Vec<&str> = std::iter::once("cycle")
        .chain(names.iter().copied())
        .collect();
    let xs: Vec<u64> = recorder.points(names[0]).iter().map(|&(x, _)| x).collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            std::iter::once(x.to_string())
                .chain(
                    names
                        .iter()
                        .map(|n| recorder.get(n, x).map(fmt).unwrap_or_default()),
                )
                .collect()
        })
        .collect();
    println!();
    print_table(&header, &rows);
    println!();
    println!(
        "paper shape: the metric is strict (a user only counts once her network is fully \
         refreshed) yet about half of the affected users are done after 30 cycles and \
         ~80% after 100 cycles, with λ=1 and λ=4 behaving similarly."
    );
}
