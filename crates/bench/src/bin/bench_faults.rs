//! Fault-degradation benchmark: recall, completion and latency of the
//! hardened eager protocol under a composite fault mix (message loss +
//! delay + duplication + crash/restart), swept over headline fault rates —
//! with a retry/TTL **ablation** at every rate so the value of the
//! hardening machinery is measured, not assumed.
//!
//! At each rate `r` the mix is the `lossy` preset (drop `r`, delay `r/2`,
//! duplicate `r/4`) plus a crash rate of `r/20` per node per cycle with a
//! 2-cycle downtime: pure delivery loss only delays the eager protocol
//! (an uncommitted exchange leaves the remaining list with the initiator,
//! who re-plans next cycle), so the permanent damage — and therefore the
//! retry machinery's value — comes from crashes wiping in-flight query
//! state.
//!
//! Every run is deterministic in `(seed, FaultConfig)` and byte-identical
//! for every `P3Q_THREADS`; the 5% row is re-executed at 1 and 3 worker
//! threads and checksum-asserted. Emits `BENCH_faults.json`.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_faults [-- OPTIONS]
//!     --users N        population size                  (default 1000)
//!     --seed N         master seed                      (default 42)
//!     --queries N      tracked queries                  (default 150)
//!     --rates a,b,c    fault rates in percent           (default 0,1,5,20)
//!     --warmup N       faulted lazy warmup cycles       (default 3)
//!     --cycles N       faulted eager cycles             (default 20; check: 4)
//!     --out PATH       output path                      (default BENCH_faults.json)
//!     --check          determinism check only: run the lossy-network mix,
//!                      assert default-threads == sequential reference and
//!                      print the checksum (CI runs this under P3Q_THREADS)
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use p3q::prelude::*;
use p3q_bench::{HarnessArgs, World};
use p3q_trace::Scenario;

struct Args {
    users: usize,
    seed: u64,
    queries: usize,
    rates_percent: Vec<f64>,
    warmup: u64,
    cycles: Option<u64>,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 1_000,
        seed: 42,
        queries: 150,
        rates_percent: vec![0.0, 1.0, 5.0, 20.0],
        warmup: 3,
        cycles: None,
        out: "BENCH_faults.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => args.users = value("--users").parse().expect("--users wants an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--queries" => {
                args.queries = value("--queries")
                    .parse()
                    .expect("--queries wants an integer")
            }
            "--rates" => {
                args.rates_percent = value("--rates")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--rates wants percentages"))
                    .collect()
            }
            "--warmup" => {
                args.warmup = value("--warmup")
                    .parse()
                    .expect("--warmup wants an integer")
            }
            "--cycles" => {
                args.cycles = Some(
                    value("--cycles")
                        .parse()
                        .expect("--cycles wants an integer"),
                )
            }
            "--out" => args.out = value("--out"),
            "--check" => args.check = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The composite mix at headline rate `rate` (a fraction, not percent):
/// the `lossy` delivery preset plus a small crash rate — see module docs.
fn fault_mix(rate: f64, fault_seed: u64) -> FaultConfig {
    if rate <= 0.0 {
        return FaultConfig::none();
    }
    let mut cfg = FaultConfig::lossy(rate, fault_seed);
    cfg.crash_rate = rate / 20.0;
    cfg.downtime_cycles = 2;
    cfg.validate();
    cfg
}

/// One measured protocol run under one fault mix.
struct ArmResult {
    loss: RecallUnderLoss,
    stats: FaultStats,
    /// Fault-plan fingerprints (lazy warmup, eager phase).
    fault_fingerprint: (u64, u64),
    /// Bandwidth totals after the run (bytes, messages).
    traffic_checksum: (u64, u64),
}

/// Builds the simulation, runs `warmup` faulted lazy cycles, issues the
/// query workload and runs `cycles` faulted eager cycles, measuring recall
/// against the centralized reference. Crash-tolerant: a querier whose node
/// crashed mid-run has lost its query book — the query counts as lost.
fn run_arm(
    world: &World,
    cfg: &P3qConfig,
    faults: FaultConfig,
    queries: &[Query],
    warmup: u64,
    cycles: u64,
    threads: Option<usize>,
) -> ArmResult {
    let budgets = vec![4usize; world.trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, 5);
    init_ideal_networks(&mut sim, &world.ideal);

    let mut lazy_faults: FaultPlan<LazyStep> = FaultPlan::new(faults);
    let mut opts = RunOptions::cycles(warmup).faulted(&mut lazy_faults);
    if let Some(t) = threads {
        opts = opts.threads(t);
    }
    sim.drive(&cfg.lazy(), opts, |_, _| {});

    let references: Vec<Vec<(ItemId, u32)>> = queries
        .iter()
        .map(|q| centralized_topk(&world.trace.dataset, &world.ideal, q, cfg.top_k))
        .collect();
    for (i, query) in queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }

    let mut eager_faults: FaultPlan<EagerTask> = FaultPlan::new(faults);
    let mut opts = RunOptions::cycles(cycles).faulted(&mut eager_faults);
    if let Some(t) = threads {
        opts = opts.threads(t);
    }
    sim.drive(&cfg.eager(), opts, |_, _| {});

    let mut loss = RecallUnderLoss::default();
    for (i, query) in queries.iter().enumerate() {
        match sim
            .node_mut(query.querier.index())
            .querier_states
            .get_mut(&QueryId(i as u64))
        {
            None => loss.record_lost(),
            Some(state) => {
                let items: Vec<ItemId> = state
                    .current_topk(cfg.top_k)
                    .iter()
                    .map(|r| r.item)
                    .collect();
                loss.record_query(
                    recall_at_k(&items, &references[i]),
                    state.completion_latency(),
                );
            }
        }
    }
    loss.total_bytes = sim.bandwidth.totals().0;

    let mut stats = lazy_faults.stats();
    let eager_stats = eager_faults.stats();
    stats.dropped += eager_stats.dropped;
    stats.delayed += eager_stats.delayed;
    stats.duplicated += eager_stats.duplicated;
    stats.expired += eager_stats.expired;
    stats.crashes += eager_stats.crashes;
    stats.restarts += eager_stats.restarts;

    ArmResult {
        loss,
        stats,
        fault_fingerprint: (lazy_faults.fingerprint(), eager_faults.fingerprint()),
        traffic_checksum: sim.bandwidth.totals(),
    }
}

/// `--check`: the CI fault-determinism entry point. Runs the 5% composite
/// mix on a lossy-network world with the environment's worker-thread count
/// and with the sequential reference, asserts byte equality and prints the
/// checksum — the CI matrix runs this binary under several `P3Q_THREADS`
/// values and diffs the printed lines across jobs.
fn run_check(args: &Args) {
    let cycles = args.cycles.unwrap_or(4);
    let harness = HarnessArgs {
        users: args.users,
        seed: args.seed,
        cycles,
        queries: args.queries,
        paper_scale: false,
        scenario: Scenario::LossyNetwork,
    };
    let world = World::build(&harness);
    let cfg = world.cfg.clone().with_fault_tolerance(cycles.max(2), 2, 0);
    let faults = fault_mix(0.05, args.seed ^ 0xFA17);
    let queries = world.sample_queries(args.queries.min(50));

    let start = Instant::now();
    let default_threads = run_arm(&world, &cfg, faults, &queries, args.warmup, cycles, None);
    let reference = run_arm(&world, &cfg, faults, &queries, args.warmup, cycles, Some(1));
    assert_eq!(
        default_threads.traffic_checksum, reference.traffic_checksum,
        "faulted run diverged from the sequential reference"
    );
    assert_eq!(
        default_threads.fault_fingerprint, reference.fault_fingerprint,
        "fault schedule diverged from the sequential reference"
    );
    println!(
        "FAULT_CHECKSUM users={} seed={} bytes={} messages={} fault_fp={:x}:{:x}",
        args.users,
        args.seed,
        default_threads.traffic_checksum.0,
        default_threads.traffic_checksum.1,
        default_threads.fault_fingerprint.0,
        default_threads.fault_fingerprint.1,
    );
    eprintln!(
        "check passed in {:.1} s (threads-default == reference)",
        start.elapsed().as_secs_f64()
    );
}

fn json_arm(json: &mut String, label: &str, arm: &ArmResult, trailing_comma: bool) {
    let _ = writeln!(json, "      \"{label}\": {{");
    let _ = writeln!(json, "        \"queries\": {},", arm.loss.queries);
    let _ = writeln!(json, "        \"lost_queries\": {},", arm.loss.lost_queries);
    let _ = writeln!(
        json,
        "        \"completed_queries\": {},",
        arm.loss.completed_queries
    );
    let _ = writeln!(
        json,
        "        \"avg_recall\": {:.4},",
        arm.loss.average_recall()
    );
    let _ = writeln!(
        json,
        "        \"completion_rate\": {:.4},",
        arm.loss.completion_rate()
    );
    let _ = writeln!(
        json,
        "        \"avg_latency_cycles\": {:.3},",
        arm.loss.average_latency_cycles().unwrap_or(-1.0)
    );
    let _ = writeln!(json, "        \"bytes_total\": {},", arm.loss.total_bytes);
    let _ = writeln!(json, "        \"dropped\": {},", arm.stats.dropped);
    let _ = writeln!(json, "        \"delayed\": {},", arm.stats.delayed);
    let _ = writeln!(json, "        \"duplicated\": {},", arm.stats.duplicated);
    let _ = writeln!(json, "        \"expired\": {},", arm.stats.expired);
    let _ = writeln!(json, "        \"crashes\": {},", arm.stats.crashes);
    let _ = writeln!(json, "        \"restarts\": {},", arm.stats.restarts);
    let _ = writeln!(
        json,
        "        \"traffic_checksum\": [{}, {}]",
        arm.traffic_checksum.0, arm.traffic_checksum.1
    );
    json.push_str("      }");
    json.push_str(if trailing_comma { ",\n" } else { "\n" });
}

fn main() {
    let args = parse_args();
    if args.check {
        run_check(&args);
        return;
    }
    let cycles = args.cycles.unwrap_or(20);

    let harness = HarnessArgs {
        users: args.users,
        seed: args.seed,
        cycles,
        queries: args.queries,
        paper_scale: false,
        scenario: Scenario::PaperDelicious,
    };
    let world = World::build(&harness);
    let hardened_cfg = world.cfg.clone().with_fault_tolerance(cycles.max(2), 2, 0);
    let plain_cfg = world.cfg.clone();
    let queries = world.sample_queries(args.queries);
    eprintln!(
        "world: {} users, {} tracked queries, {} lazy warmup + {} eager cycles",
        args.users,
        queries.len(),
        args.warmup,
        cycles
    );

    struct RateRow {
        rate_percent: f64,
        hardened: ArmResult,
        ablation: ArmResult,
    }
    let mut rows: Vec<RateRow> = Vec::new();
    for &rate_percent in &args.rates_percent {
        let rate = rate_percent / 100.0;
        let faults = fault_mix(rate, args.seed ^ 0xFA17);
        let start = Instant::now();
        let hardened = run_arm(
            &world,
            &hardened_cfg,
            faults,
            &queries,
            args.warmup,
            cycles,
            None,
        );
        let ablation = run_arm(
            &world,
            &plain_cfg,
            faults,
            &queries,
            args.warmup,
            cycles,
            None,
        );
        eprintln!(
            "rate {:>5.1}%: recall {:.4} (hardened) vs {:.4} (no retry/TTL), \
             {} lost, {} dropped, {} crashes  [{:.1} s]",
            rate_percent,
            hardened.loss.average_recall(),
            ablation.loss.average_recall(),
            hardened.loss.lost_queries,
            hardened.stats.dropped,
            hardened.stats.crashes,
            start.elapsed().as_secs_f64()
        );
        rows.push(RateRow {
            rate_percent,
            hardened,
            ablation,
        });
    }

    // Determinism spot check: the faulted engine is thread-count
    // independent — re-run the highest nonzero rate at 1 and 3 workers and
    // require byte-identical traffic and fault schedules.
    if let Some(row) = rows.iter().rev().find(|r| r.rate_percent > 0.0) {
        let faults = fault_mix(row.rate_percent / 100.0, args.seed ^ 0xFA17);
        for threads in [1usize, 3] {
            let rerun = run_arm(
                &world,
                &hardened_cfg,
                faults,
                &queries,
                args.warmup,
                cycles,
                Some(threads),
            );
            assert_eq!(
                rerun.traffic_checksum, row.hardened.traffic_checksum,
                "faulted run diverged at {threads} worker threads"
            );
            assert_eq!(
                rerun.fault_fingerprint, row.hardened.fault_fingerprint,
                "fault schedule diverged at {threads} worker threads"
            );
        }
        eprintln!(
            "determinism: {}% row byte-identical at 1 and 3 worker threads",
            row.rate_percent
        );
    }

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"faults\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"users\": {},", args.users);
    let _ = writeln!(json, "  \"queries\": {},", queries.len());
    let _ = writeln!(json, "  \"lazy_warmup_cycles\": {},", args.warmup);
    let _ = writeln!(json, "  \"eager_cycles\": {cycles},");
    let _ = writeln!(
        json,
        "  \"note\": \"recall/completion/latency degradation of the eager protocol under a composite fault mix (lossy preset + crash rate/20), hardened (retry+TTL) vs ablation; deterministic in (seed, FaultConfig), thread-checksum asserted\","
    );
    json.push_str("  \"rates\": [\n");
    for (i, row) in rows.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"rate_percent\": {},", row.rate_percent);
        json_arm(&mut json, "hardened", &row.hardened, true);
        json_arm(&mut json, "ablation_no_retry", &row.ablation, false);
        json.push_str("    }");
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]");

    // Headline acceptance numbers: recall at 5% loss vs the zero-fault
    // baseline, and the retry machinery's advantage over the ablation.
    let baseline = rows.iter().find(|r| r.rate_percent == 0.0);
    let at5 = rows.iter().find(|r| r.rate_percent == 5.0);
    if let (Some(base), Some(at5)) = (baseline, at5) {
        let drop_pct = 100.0
            * (1.0 - at5.hardened.loss.average_recall() / base.hardened.loss.average_recall());
        let advantage = at5.hardened.loss.average_recall() - at5.ablation.loss.average_recall();
        json.push_str(",\n  \"acceptance\": {\n");
        let _ = writeln!(json, "    \"recall_drop_at_5pct_percent\": {drop_pct:.3},");
        let _ = writeln!(json, "    \"retry_advantage_at_5pct\": {advantage:.4}");
        json.push_str("  }");
        eprintln!(
            "acceptance: recall drop at 5% = {drop_pct:.2}% (must stay under 10%), \
             retry advantage = {advantage:.4}"
        );
    }
    json.push_str("\n}\n");

    std::fs::write(&args.out, &json).expect("writing the benchmark output");
    eprintln!("wrote {}", args.out);
}
