//! Transport-runtime benchmark and oracle gate: drives the same eager query
//! workload through the deterministic simulator and through the
//! message-passing transport runtime (`p3q_transport::TransportRuntime`)
//! over a sweep of shard-actor counts, asserting **byte-identity** — equal
//! node-state fingerprints, traffic checksums and run reports — at every
//! layout, and timing each arm.
//!
//! A composite-fault arm repeats the comparison with message loss, delay,
//! duplication and node crash/restarts reinterpreted as transport faults,
//! pinning the fault schedule (`FaultPlan` fingerprint) as well.
//!
//! Emits `BENCH_transport.json`; the state/traffic checksums in it are
//! host-independent, so the CI baseline gate treats them as exact.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_transport [-- OPTIONS]
//!     --users N        population size                  (default 1000)
//!     --seed N         master seed                      (default 42)
//!     --queries N      tracked queries                  (default 100)
//!     --warmup N       lazy warmup cycles               (default 3)
//!     --cycles N       eager cycles                     (default 12; check: 4)
//!     --actors a,b,c   shard-actor counts to sweep      (default 1,3,8)
//!     --out PATH       output path                      (default BENCH_transport.json)
//!     --check          oracle check only: run one transport layout (actor
//!                      count from P3Q_THREADS, default 3), assert it is
//!                      byte-identical to the simulator and print the
//!                      checksum (CI runs this under a P3Q_THREADS matrix
//!                      and diffs the printed lines across jobs)
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use p3q::prelude::*;
use p3q_bench::{HarnessArgs, World};
use p3q_trace::Scenario;
use p3q_transport::{DeliverySchedule, TransportRuntime};

struct Args {
    users: usize,
    seed: u64,
    queries: usize,
    warmup: u64,
    cycles: Option<u64>,
    actors: Vec<usize>,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: 1_000,
        seed: 42,
        queries: 100,
        warmup: 3,
        cycles: None,
        actors: vec![1, 3, 8],
        out: "BENCH_transport.json".to_string(),
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => args.users = value("--users").parse().expect("--users wants an integer"),
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--queries" => {
                args.queries = value("--queries")
                    .parse()
                    .expect("--queries wants an integer")
            }
            "--warmup" => {
                args.warmup = value("--warmup")
                    .parse()
                    .expect("--warmup wants an integer")
            }
            "--cycles" => {
                args.cycles = Some(
                    value("--cycles")
                        .parse()
                        .expect("--cycles wants an integer"),
                )
            }
            "--actors" => {
                args.actors = value("--actors")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--actors wants integers"))
                    .collect()
            }
            "--out" => args.out = value("--out"),
            "--check" => args.check = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A host-independent digest of a run's complete end state: cycle, every
/// node (via the `Fingerprint` chain) and the traffic totals.
fn state_checksum<'a>(
    cycle: u64,
    nodes: impl IntoIterator<Item = &'a P3qNode>,
    totals: (u64, u64),
) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(cycle);
    h.write_u64(fingerprint_chain(nodes));
    h.write_u64(totals.0);
    h.write_u64(totals.1);
    h.finish()
}

/// Builds the simulation at the point both drivers start from: ideal
/// personal networks, `warmup` lazy cycles, the query workload issued.
fn build_sim(world: &World, cfg: &P3qConfig, queries: &[Query], warmup: u64) -> Simulator<P3qNode> {
    let budgets = vec![4usize; world.trace.dataset.num_users()];
    let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, 5);
    init_ideal_networks(&mut sim, &world.ideal);
    sim.drive(&cfg.lazy(), RunOptions::cycles(warmup), |_, _| {});
    for (i, query) in queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim
}

/// One measured run (simulator or transport).
struct ArmResult {
    elapsed_s: f64,
    report: RunReport,
    traffic_checksum: (u64, u64),
    state_checksum: u64,
}

fn run_simulator(
    world: &World,
    cfg: &P3qConfig,
    queries: &[Query],
    warmup: u64,
    cycles: u64,
) -> ArmResult {
    let mut sim = build_sim(world, cfg, queries, warmup);
    let start = Instant::now();
    let report = sim.drive(&cfg.eager(), RunOptions::cycles(cycles), |_, _| {});
    let elapsed_s = start.elapsed().as_secs_f64();
    ArmResult {
        elapsed_s,
        report,
        traffic_checksum: sim.bandwidth.totals(),
        state_checksum: state_checksum(sim.cycle(), sim.nodes(), sim.bandwidth.totals()),
    }
}

fn run_transport(
    world: &World,
    cfg: &P3qConfig,
    queries: &[Query],
    warmup: u64,
    cycles: u64,
    actors: usize,
) -> ArmResult {
    let mut sim = build_sim(world, cfg, queries, warmup);
    let mut rt = TransportRuntime::from_simulator(&mut sim, actors, DeliverySchedule::canonical());
    let start = Instant::now();
    let report = rt.drive(&cfg.eager(), RunOptions::cycles(cycles));
    let elapsed_s = start.elapsed().as_secs_f64();
    let totals = rt.bandwidth.totals();
    ArmResult {
        elapsed_s,
        report,
        traffic_checksum: totals,
        state_checksum: state_checksum(rt.cycle(), rt.nodes(), totals),
    }
}

fn assert_oracle_equal(reference: &ArmResult, transport: &ArmResult, label: &str) {
    assert_eq!(
        reference.report, transport.report,
        "{label}: run report diverged from the simulator"
    );
    assert_eq!(
        reference.traffic_checksum, transport.traffic_checksum,
        "{label}: traffic diverged from the simulator"
    );
    assert_eq!(
        reference.state_checksum, transport.state_checksum,
        "{label}: node state diverged from the simulator"
    );
}

/// The composite transport-fault mix for the faulted arm: the 5% lossy
/// preset plus a small crash rate, as in `bench_faults`.
fn fault_mix(fault_seed: u64) -> FaultConfig {
    let mut cfg = FaultConfig::lossy(0.05, fault_seed);
    cfg.crash_rate = 0.002;
    cfg.downtime_cycles = 2;
    cfg.validate();
    cfg
}

/// Faulted oracle comparison at one actor count; returns the (shared)
/// fault fingerprint, traffic and state checksums.
fn run_faulted(
    world: &World,
    cfg: &P3qConfig,
    queries: &[Query],
    warmup: u64,
    cycles: u64,
    actors: usize,
    fault_seed: u64,
) -> (u64, (u64, u64), u64) {
    let faults = fault_mix(fault_seed);

    let mut sim = build_sim(world, cfg, queries, warmup);
    let mut sim_faults: FaultPlan<EagerTask> = FaultPlan::new(faults);
    sim.drive(
        &cfg.eager(),
        RunOptions::cycles(cycles).faulted(&mut sim_faults),
        |_, _| {},
    );
    let sim_state = state_checksum(sim.cycle(), sim.nodes(), sim.bandwidth.totals());

    let mut seeded = build_sim(world, cfg, queries, warmup);
    let mut rt =
        TransportRuntime::from_simulator(&mut seeded, actors, DeliverySchedule::canonical());
    let mut rt_faults: FaultPlan<EagerTask> = FaultPlan::new(faults);
    rt.drive(
        &cfg.eager(),
        RunOptions::cycles(cycles).faulted(&mut rt_faults),
    );
    let rt_state = state_checksum(rt.cycle(), rt.nodes(), rt.bandwidth.totals());

    assert_eq!(
        sim_faults.fingerprint(),
        rt_faults.fingerprint(),
        "faulted arm: fault schedule diverged (actors {actors})"
    );
    assert_eq!(sim_faults.stats(), rt_faults.stats());
    assert_eq!(
        sim.bandwidth.totals(),
        rt.bandwidth.totals(),
        "faulted arm: traffic diverged (actors {actors})"
    );
    assert_eq!(
        sim_state, rt_state,
        "faulted arm: node state diverged (actors {actors})"
    );
    (sim_faults.fingerprint(), rt.bandwidth.totals(), rt_state)
}

/// `--check`: the CI transport-determinism entry point. Runs the workload
/// through the simulator and through one transport layout — the actor
/// count comes from `P3Q_THREADS`, so the CI matrix exercises layouts
/// 1 / 3 / 8 — asserts byte-identity (faultless and composite-faulted) and
/// prints a checksum line the matrix diffs across jobs.
fn run_check(args: &Args) {
    let cycles = args.cycles.unwrap_or(4);
    let actors = std::env::var("P3Q_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3usize);
    let harness = HarnessArgs {
        users: args.users,
        seed: args.seed,
        cycles,
        queries: args.queries,
        paper_scale: false,
        scenario: Scenario::PaperDelicious,
    };
    let world = World::build(&harness);
    let cfg = world.cfg.clone();
    let queries = world.sample_queries(args.queries.min(50));

    let start = Instant::now();
    let reference = run_simulator(&world, &cfg, &queries, args.warmup, cycles);
    let transport = run_transport(&world, &cfg, &queries, args.warmup, cycles, actors);
    assert_oracle_equal(&reference, &transport, &format!("actors = {actors}"));
    let (fault_fp, faulted_traffic, faulted_state) = run_faulted(
        &world,
        &cfg,
        &queries,
        args.warmup,
        cycles,
        actors,
        args.seed ^ 0xFA17,
    );
    println!(
        "TRANSPORT_CHECKSUM users={} seed={} bytes={} messages={} state_fp={:016x} \
         faulted_bytes={} faulted_state_fp={:016x} fault_fp={:x}",
        args.users,
        args.seed,
        reference.traffic_checksum.0,
        reference.traffic_checksum.1,
        reference.state_checksum,
        faulted_traffic.0,
        faulted_state,
        fault_fp,
    );
    eprintln!(
        "check passed in {:.1} s ({actors}-actor transport == simulator, faultless and faulted)",
        start.elapsed().as_secs_f64()
    );
}

fn main() {
    let args = parse_args();
    if args.check {
        run_check(&args);
        return;
    }
    let cycles = args.cycles.unwrap_or(12);

    let harness = HarnessArgs {
        users: args.users,
        seed: args.seed,
        cycles,
        queries: args.queries,
        paper_scale: false,
        scenario: Scenario::PaperDelicious,
    };
    let world = World::build(&harness);
    let cfg = world.cfg.clone();
    let queries = world.sample_queries(args.queries);
    eprintln!(
        "world: {} users, {} tracked queries, {} lazy warmup + {} eager cycles",
        args.users,
        queries.len(),
        args.warmup,
        cycles
    );

    let reference = run_simulator(&world, &cfg, &queries, args.warmup, cycles);
    eprintln!(
        "simulator: {:.2} s, {} exchanges, state {:016x}",
        reference.elapsed_s,
        reference.report.exchanges(),
        reference.state_checksum
    );

    let mut arms: Vec<(usize, ArmResult)> = Vec::new();
    for &actors in &args.actors {
        let arm = run_transport(&world, &cfg, &queries, args.warmup, cycles, actors);
        assert_oracle_equal(&reference, &arm, &format!("actors = {actors}"));
        eprintln!(
            "transport {actors:>2} actor(s): {:.2} s ({:.2}x simulator), byte-identical",
            arm.elapsed_s,
            reference.elapsed_s / arm.elapsed_s.max(1e-9)
        );
        arms.push((actors, arm));
    }

    // Faulted arm at the middle layout: the fault mix reinterpreted as
    // transport faults must reproduce the simulator's schedule and state.
    let faulted_actors = args.actors.get(args.actors.len() / 2).copied().unwrap_or(3);
    let (fault_fp, faulted_traffic, faulted_state) = run_faulted(
        &world,
        &cfg,
        &queries,
        args.warmup,
        cycles,
        faulted_actors,
        args.seed ^ 0xFA17,
    );
    eprintln!("faulted arm ({faulted_actors} actors): byte-identical, fault_fp {fault_fp:x}");

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"transport\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(json, "  \"users\": {},", args.users);
    let _ = writeln!(json, "  \"queries\": {},", queries.len());
    let _ = writeln!(json, "  \"lazy_warmup_cycles\": {},", args.warmup);
    let _ = writeln!(json, "  \"eager_cycles\": {cycles},");
    let _ = writeln!(
        json,
        "  \"note\": \"eager workload through the message-passing transport runtime vs the simulator oracle; every layout byte-identity-asserted (state fingerprint, traffic, run report), plus a composite-fault arm pinning the fault schedule\","
    );
    json.push_str("  \"simulator\": {\n");
    let _ = writeln!(json, "    \"elapsed_s\": {:.3},", reference.elapsed_s);
    let _ = writeln!(json, "    \"exchanges\": {},", reference.report.exchanges());
    let _ = writeln!(
        json,
        "    \"traffic_checksum\": [{}, {}],",
        reference.traffic_checksum.0, reference.traffic_checksum.1
    );
    let _ = writeln!(
        json,
        "    \"state_checksum\": \"{:016x}\"",
        reference.state_checksum
    );
    json.push_str("  },\n  \"transport\": [\n");
    for (i, (actors, arm)) in arms.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"actors\": {actors},");
        let _ = writeln!(json, "      \"elapsed_s\": {:.3},", arm.elapsed_s);
        let _ = writeln!(
            json,
            "      \"speedup_vs_simulator\": {:.3},",
            reference.elapsed_s / arm.elapsed_s.max(1e-9)
        );
        let _ = writeln!(
            json,
            "      \"traffic_checksum\": [{}, {}],",
            arm.traffic_checksum.0, arm.traffic_checksum.1
        );
        let _ = writeln!(
            json,
            "      \"state_checksum\": \"{:016x}\"",
            arm.state_checksum
        );
        json.push_str("    }");
        json.push_str(if i + 1 < arms.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n  \"faulted\": {\n");
    let _ = writeln!(json, "    \"actors\": {faulted_actors},");
    let _ = writeln!(json, "    \"fault_checksum\": \"{fault_fp:x}\",");
    let _ = writeln!(
        json,
        "    \"traffic_checksum\": [{}, {}],",
        faulted_traffic.0, faulted_traffic.1
    );
    let _ = writeln!(json, "    \"state_checksum\": \"{faulted_state:016x}\"");
    json.push_str("  }\n}\n");

    std::fs::write(&args.out, &json).expect("writing the benchmark output");
    eprintln!("wrote {}", args.out);
}
