//! Gossip-cycle throughput benchmark: cycles/sec of the plan/commit
//! exchange engine at several population scales, sequential reference vs.
//! the parallel engine at 1/2/4/8 worker threads — with a byte-equality
//! check across every configuration (the engine's determinism contract).
//!
//! Emits `BENCH_cycles.json` in the working directory so the cycle-engine
//! trajectory is tracked from PR to PR. The file also records the host's
//! available parallelism: on a single-core container the parallel numbers
//! measure engine overhead, not speedup — the determinism property suite is
//! what guarantees the same bytes come out when cores are available.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_cycles [-- OPTIONS]
//!     --users a,b,c    population scales      (default 10000,50000,100000)
//!     --cycles N       lazy cycles to time    (default 3)
//!     --warmup N       untimed warmup cycles  (default 2)
//!     --threads a,b    thread counts to time  (default 1,2,4,8)
//!     --seed N         master seed            (default 42)
//!     --scenario NAME  workload preset        (default paper-delicious)
//!     --out PATH       output path            (default BENCH_cycles.json)
//! ```

use std::fmt::Write as _;
use std::num::NonZeroUsize;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use p3q::config::P3qConfig;
use p3q::experiment::build_simulator;
use p3q::lazy::bootstrap_random_views;
use p3q::node::P3qNode;
use p3q::storage::StorageDistribution;
use p3q_sim::RunOptions;
use p3q_sim::Simulator;
use p3q_trace::{Scenario, ScenarioConfig, TraceGenerator};

struct Args {
    users: Vec<usize>,
    cycles: u64,
    warmup: u64,
    threads: Vec<usize>,
    seed: u64,
    scenario: Scenario,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: vec![10_000, 50_000, 100_000],
        cycles: 3,
        warmup: 2,
        threads: vec![1, 2, 4, 8],
        seed: 42,
        scenario: Scenario::PaperDelicious,
        out: "BENCH_cycles.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    let parse_list = |value: String, name: &str| -> Vec<usize> {
        value
            .split(',')
            .map(|v| {
                v.trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("{name} wants integers"))
            })
            .collect()
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => args.users = parse_list(value("--users"), "--users"),
            "--threads" => args.threads = parse_list(value("--threads"), "--threads"),
            "--cycles" => {
                args.cycles = value("--cycles")
                    .parse()
                    .expect("--cycles wants an integer")
            }
            "--warmup" => {
                args.warmup = value("--warmup")
                    .parse()
                    .expect("--warmup wants an integer")
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--scenario" => args.scenario = Scenario::from_flag(&value("--scenario")),
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// One timed configuration: how the cycles were executed.
struct Mode {
    label: String,
    /// `None` = sequential reference; `Some(t)` = parallel engine.
    threads: Option<usize>,
}

struct ModeResult {
    label: String,
    elapsed_s: f64,
    cycles_per_sec: f64,
    speedup_vs_reference: f64,
    /// Bandwidth totals after the timed run — must be identical across all
    /// modes (byte-identical execution).
    checksum: (u64, u64),
}

struct ScaleResult {
    users: usize,
    total_actions: usize,
    warmup_cycles: u64,
    timed_cycles: u64,
    /// Resident bytes of the node column (protocol state: views, digests,
    /// query books) after warmup, in the compacted layout...
    bytes_nodes: usize,
    /// ...and what the pre-refactor layout (u64 versions in every
    /// personal-network entry) would hold for the same state.
    bytes_nodes_previous_layout: usize,
    modes: Vec<ModeResult>,
}

fn bench_scale(users: usize, args: &Args) -> ScaleResult {
    eprintln!("== {users} users ==");
    let start = Instant::now();
    // The scenario layer's density-preserving shape: items-per-user density
    // (and therefore the overlap structure) stays constant across scales.
    // Only the trace is generated — this benchmark times gossip cycles, so
    // materializing the scenario's event schedule would be wasted work.
    let scenario = ScenarioConfig::new(args.scenario, users, args.seed);
    let trace = TraceGenerator::new(scenario.trace_config()).generate();
    eprintln!(
        "   trace: {} actions, generated in {:.1} s",
        trace.dataset.total_actions(),
        start.elapsed().as_secs_f64()
    );
    let cfg = P3qConfig::laptop_scale();
    let mut sim = build_simulator(
        &trace.dataset,
        &cfg,
        &StorageDistribution::Uniform(100),
        args.seed,
    );
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &cfg, &mut rng);

    // Warm the network up so timed cycles exercise populated personal
    // networks (stored profiles, offers, probes) rather than cold views.
    // The engine is thread-count independent, so warming up with the
    // default worker count leaves the same bytes for every timed mode.
    sim.drive(&cfg.lazy(), RunOptions::cycles(args.warmup), |_, _| {});

    // Node-storage accounting at the measurement point (deterministic for a
    // given seed): the shard-partitioned store sums each node's protocol
    // state, next to the equivalent bytes of the pre-refactor entry layout.
    let bytes_nodes = sim.node_store().storage_bytes(P3qNode::storage_bytes);
    let bytes_nodes_previous_layout = sim
        .node_store()
        .storage_bytes(P3qNode::previous_layout_bytes);
    eprintln!(
        "   node storage: {:.1} MiB vs {:.1} MiB previous layout ({:.1}% less)",
        bytes_nodes as f64 / (1 << 20) as f64,
        bytes_nodes_previous_layout as f64 / (1 << 20) as f64,
        100.0 * (1.0 - bytes_nodes as f64 / bytes_nodes_previous_layout as f64)
    );

    let mut modes = vec![Mode {
        label: "sequential_reference".to_string(),
        threads: None,
    }];
    for &t in &args.threads {
        modes.push(Mode {
            label: format!("parallel_{t}_threads"),
            threads: Some(t),
        });
    }

    let mut results: Vec<ModeResult> = Vec::new();
    let mut reference_elapsed = None;
    for mode in &modes {
        let mut timed: Simulator<P3qNode> = sim.clone();
        let start = Instant::now();
        for _ in 0..args.cycles {
            match mode.threads {
                None => timed.drive(&cfg.lazy(), RunOptions::cycles(1).oracle(), |_, _| {}),
                Some(t) => timed.drive(&cfg.lazy(), RunOptions::cycles(1).threads(t), |_, _| {}),
            };
        }
        let elapsed = start.elapsed().as_secs_f64();
        let checksum = timed.bandwidth.totals();
        if reference_elapsed.is_none() {
            reference_elapsed = Some(elapsed);
        }
        let speedup = reference_elapsed.unwrap() / elapsed;
        eprintln!(
            "   {:<24} {:>7.2} s  {:>6.3} cycles/s  ({speedup:.2}x vs reference)",
            mode.label,
            elapsed,
            args.cycles as f64 / elapsed
        );
        results.push(ModeResult {
            label: mode.label.clone(),
            elapsed_s: elapsed,
            cycles_per_sec: args.cycles as f64 / elapsed,
            speedup_vs_reference: speedup,
            checksum,
        });
    }

    // Determinism spot check: every mode must have produced byte-identical
    // traffic (full state equality is pinned by the property suites).
    let reference_checksum = results[0].checksum;
    for r in &results {
        assert_eq!(
            r.checksum, reference_checksum,
            "mode {} diverged from the sequential reference",
            r.label
        );
    }

    ScaleResult {
        users,
        total_actions: trace.dataset.total_actions(),
        warmup_cycles: args.warmup,
        timed_cycles: args.cycles,
        bytes_nodes,
        bytes_nodes_previous_layout,
        modes: results,
    }
}

fn main() {
    let args = parse_args();
    let host_parallelism = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    eprintln!("host parallelism: {host_parallelism} core(s)");
    let results: Vec<ScaleResult> = args.users.iter().map(|&u| bench_scale(u, &args)).collect();

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"cycles\",\n");
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    let _ = writeln!(
        json,
        "  \"host_available_parallelism\": {host_parallelism},"
    );
    let _ = writeln!(
        json,
        "  \"note\": \"cycles/sec of the plan/commit lazy-gossip engine; all modes are byte-identical (checksum-asserted); parallel speedup requires cores — on a 1-core host these numbers measure engine overhead\","
    );
    json.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"total_actions\": {},", r.total_actions);
        let _ = writeln!(json, "      \"warmup_cycles\": {},", r.warmup_cycles);
        let _ = writeln!(json, "      \"timed_cycles\": {},", r.timed_cycles);
        let _ = writeln!(json, "      \"bytes_nodes\": {},", r.bytes_nodes);
        let _ = writeln!(
            json,
            "      \"bytes_nodes_previous_layout\": {},",
            r.bytes_nodes_previous_layout
        );
        json.push_str("      \"modes\": [\n");
        for (j, m) in r.modes.iter().enumerate() {
            json.push_str("        {\n");
            let _ = writeln!(json, "          \"mode\": \"{}\",", m.label);
            let _ = writeln!(json, "          \"elapsed_s\": {:.3},", m.elapsed_s);
            let _ = writeln!(
                json,
                "          \"cycles_per_sec\": {:.4},",
                m.cycles_per_sec
            );
            let _ = writeln!(
                json,
                "          \"speedup_vs_reference\": {:.3},",
                m.speedup_vs_reference
            );
            let _ = writeln!(
                json,
                "          \"traffic_checksum\": [{}, {}]",
                m.checksum.0, m.checksum.1
            );
            json.push_str("        }");
            json.push_str(if j + 1 < r.modes.len() { ",\n" } else { "\n" });
        }
        json.push_str("      ]\n    }");
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("writing the benchmark output");
    eprintln!("wrote {}", args.out);
}
