//! Figure 3 — Average recall evolution for different values of α (c = 10).
//!
//! All tracked queries are issued simultaneously on ideal personal networks
//! with the smallest storage budget; the eager mode runs for `--cycles`
//! cycles and the average recall against the centralized reference is
//! reported per cycle, for α ∈ {0, 0.1, 0.3, 0.5, 0.7, 0.9, 1}.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig3_alpha -- --users 1000 --queries 200
//! ```

use p3q::prelude::*;
use p3q::storage::scale_bucket;
use p3q_bench::{fmt, print_table, run_recall_experiment, HarnessArgs, World};

fn main() {
    let args = HarnessArgs::parse(20);
    println!("=== Figure 3: average recall vs cycles for different α (c = 10) ===");
    let world = World::build(&args);
    let base_cfg = &world.cfg;
    let c = scale_bucket(10, base_cfg.personal_network_size);
    let queries = world.sample_queries(args.queries);
    println!(
        "users {}, tracked queries {}, c = 10/1000 of s → {} stored profiles",
        args.users,
        queries.len(),
        c
    );

    let alphas = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
    let mut results = Vec::new();
    for &alpha in &alphas {
        let cfg = base_cfg.clone().with_alpha(alpha);
        // Only α differs; the trace, index and ideal networks are shared.
        let scoped_world = World {
            trace: world.trace.clone(),
            cfg: cfg.clone(),
            index: world.index.clone(),
            ideal: world.ideal.clone(),
            queries: world.queries.clone(),
            schedule: world.schedule.clone(),
        };
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, &cfg, &budgets, args.seed);
        init_ideal_networks(&mut sim, &scoped_world.ideal);
        let outcome = run_recall_experiment(&mut sim, &scoped_world, &queries, args.cycles);
        eprintln!(
            "  α={alpha:<4}: recall cycle0 {:.3} → final {:.3}",
            outcome.recall_per_cycle[0],
            outcome.recall_per_cycle.last().copied().unwrap_or(0.0)
        );
        results.push((alpha, outcome));
    }

    let header: Vec<String> = std::iter::once("cycle".to_string())
        .chain(alphas.iter().map(|a| format!("a={a}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> =
        (0..=args.cycles as usize)
            .map(|cycle| {
                std::iter::once(cycle.to_string())
                    .chain(results.iter().map(|(_, r)| {
                        fmt(r.recall_per_cycle[cycle.min(r.recall_per_cycle.len() - 1)])
                    }))
                    .collect()
            })
            .collect();
    println!();
    print_table(&header_refs, &rows);

    // The cycle at which each α first reaches 99% recall — the latency
    // ordering Theorem 2.2 predicts (minimum at α = 0.5).
    println!();
    let mut latency_rows = Vec::new();
    for (alpha, outcome) in &results {
        let cycle = outcome
            .recall_per_cycle
            .iter()
            .position(|&r| r >= 0.99)
            .map(|c| c.to_string())
            .unwrap_or_else(|| format!(">{}", args.cycles));
        latency_rows.push(vec![alpha.to_string(), cycle]);
    }
    print_table(&["alpha", "cycles to recall ≥ 0.99"], &latency_rows);
    println!();
    println!(
        "paper shape: α = 0.5 converges fastest; the closer α is to 0.5, the faster \
         the top-10 results approach the centralized reference (Theorem 2.2)."
    );
}
