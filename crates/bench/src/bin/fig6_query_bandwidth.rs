//! Figure 6 — Bandwidth consumed to answer a query, split into partial
//! result lists, returned remaining lists and forwarded remaining lists
//! (Poisson λ=1 storage; λ=4 is reported for comparison as in the running
//! text of Section 3.3.2).
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig6_query_bandwidth -- --users 1000 --queries 100
//! ```

use p3q::prelude::*;
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::DistributionSummary;

struct ScenarioOutcome {
    label: String,
    per_query: Vec<(u64, u64, u64)>, // (partial, returned, forwarded)
    messages: Vec<f64>,
}

fn run_scenario(
    world: &World,
    storage: StorageDistribution,
    queries: &[Query],
    seed: u64,
    max_cycles: u64,
) -> ScenarioOutcome {
    let cfg = &world.cfg;
    let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, seed);
    init_ideal_networks(&mut sim, &world.ideal);
    for (i, query) in queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim.drive(
        &cfg.eager(),
        RunOptions::until_complete(max_cycles),
        |_, _| {},
    );

    let mut per_query = Vec::new();
    let mut messages = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        let state = sim
            .node(query.querier.index())
            .querier_states
            .get(&QueryId(i as u64))
            .expect("query state");
        per_query.push((
            state.traffic.partial_results,
            state.traffic.returned_remaining,
            state.traffic.forwarded_remaining,
        ));
        messages.push(state.traffic.partial_result_messages as f64);
    }
    ScenarioOutcome {
        label: storage.label(),
        per_query,
        messages,
    }
}

fn main() {
    let args = HarnessArgs::parse(40);
    println!("=== Figure 6: per-query bandwidth breakdown ===");
    let world = World::build(&args);
    let queries = world.sample_queries(args.queries);
    println!("users {}, tracked queries {}", args.users, queries.len());

    let scenarios = [
        StorageDistribution::poisson_lambda_1(),
        StorageDistribution::poisson_lambda_4(),
    ];
    let mut outcomes = Vec::new();
    for storage in scenarios {
        eprintln!("  running {} …", storage.label());
        outcomes.push(run_scenario(
            &world,
            storage,
            &queries,
            args.seed,
            args.cycles,
        ));
    }

    for outcome in &outcomes {
        println!();
        println!("--- {} ---", outcome.label);
        let partial: Vec<f64> = outcome.per_query.iter().map(|t| t.0 as f64).collect();
        let returned: Vec<f64> = outcome.per_query.iter().map(|t| t.1 as f64).collect();
        let forwarded: Vec<f64> = outcome.per_query.iter().map(|t| t.2 as f64).collect();
        let totals: Vec<f64> = outcome
            .per_query
            .iter()
            .map(|t| (t.0 + t.1 + t.2) as f64)
            .collect();
        let rows = vec![
            vec![
                "partial result lists".to_string(),
                fmt(DistributionSummary::of(&partial).mean),
                fmt(DistributionSummary::of(&partial).max),
            ],
            vec![
                "returned remaining lists".to_string(),
                fmt(DistributionSummary::of(&returned).mean),
                fmt(DistributionSummary::of(&returned).max),
            ],
            vec![
                "forwarded remaining lists".to_string(),
                fmt(DistributionSummary::of(&forwarded).mean),
                fmt(DistributionSummary::of(&forwarded).max),
            ],
            vec![
                "total".to_string(),
                fmt(DistributionSummary::of(&totals).mean),
                fmt(DistributionSummary::of(&totals).max),
            ],
        ];
        print_table(&["category (bytes/query)", "mean", "max"], &rows);
        println!(
            "partial-result messages per query: {}",
            DistributionSummary::of(&outcome.messages)
        );

        // The per-query profile of Figure 6: queries ranked by the volume of
        // partial result lists (the dominating component), first 20 shown.
        let mut ranked = outcome.per_query.clone();
        ranked.sort_by_key(|t| t.0);
        println!("per-query sample (ranked by partial-result bytes):");
        let rows: Vec<Vec<String>> = ranked
            .iter()
            .enumerate()
            .step_by((ranked.len() / 20).max(1))
            .map(|(rank, t)| {
                vec![
                    rank.to_string(),
                    t.0.to_string(),
                    t.1.to_string(),
                    t.2.to_string(),
                ]
            })
            .collect();
        print_table(&["query rank", "partial", "returned", "forwarded"], &rows);
    }

    println!();
    println!(
        "paper shape: partial result lists dominate the per-query traffic; the λ=4 system \
         moves less data per query than λ=1 (storage-rich users resolve several profiles \
         in one hop) and needs far fewer partial-result messages (paper: 228 vs 70)."
    );
}
