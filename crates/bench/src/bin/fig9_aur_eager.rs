//! Figure 9 — Freshness effect of the eager mode: AUR over the users reached
//! by a burst of consecutive queries issued before the next lazy cycle.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig9_aur_eager -- --users 1000 --queries 200
//! ```

use std::collections::HashSet;

use p3q::prelude::*;
use p3q_bench::{fmt, print_table, HarnessArgs, World};

fn main() {
    let args = HarnessArgs::parse(20);
    println!("=== Figure 9: AUR of the users reached by consecutive queries (eager mode) ===");
    let world = World::build(&args);
    let cfg = &world.cfg;
    println!("users {}, consecutive queries {}", args.users, args.queries);

    // The λ=1 population (small storage) is the scenario where the paper
    // observes the strongest acceleration.
    let mut sim = build_simulator(
        &world.trace.dataset,
        cfg,
        &StorageDistribution::poisson_lambda_1(),
        args.seed,
    );
    init_ideal_networks(&mut sim, &world.ideal);

    // Everyone changes her profile; no lazy cycle will run, so only the
    // eager-mode piggybacked maintenance can propagate the changes.
    let batch =
        DynamicsGenerator::new(DynamicsConfig::all_users(args.seed ^ 0xA11)).generate(&world.trace);
    let changed: HashSet<UserId> = batch.changed_users().into_iter().collect();
    for change in &batch.changes {
        sim.node_mut(change.user.index())
            .add_tagging_actions(change.new_actions.iter().copied());
    }
    let versions: Vec<u64> = (0..sim.num_nodes())
        .map(|i| sim.node(i).profile_version())
        .collect();

    // A single user issues consecutive queries; after each one we measure the
    // AUR restricted to the users reached so far.
    let querier = world.queries[0].querier;
    let burst = QueryGenerator::new(args.seed ^ 0xB1).burst_for_user(
        &world.trace.dataset,
        querier,
        args.queries,
    );
    let mut reached_so_far: HashSet<UserId> = HashSet::new();
    let mut rows = Vec::new();
    let sample_every = (args.queries / 20).max(1);
    for (i, query) in burst.into_iter().enumerate() {
        let qid = QueryId(i as u64);
        issue_query(&mut sim, querier.index(), qid, query, cfg);
        sim.drive(&cfg.eager(), RunOptions::until_complete(30), |_, _| {});
        {
            let state = sim
                .node(querier.index())
                .querier_states
                .get(&qid)
                .expect("query state");
            reached_so_far.extend(state.reached_users.iter().copied());
        }
        if (i + 1) % sample_every == 0 || i == 0 {
            let reached_nodes: Vec<&P3qNode> =
                reached_so_far.iter().map(|u| sim.node(u.index())).collect();
            let aur = average_update_rate(reached_nodes, &changed, &versions);
            rows.push(vec![
                (i + 1).to_string(),
                reached_so_far.len().to_string(),
                fmt(aur),
            ]);
        }
    }
    print_table(
        &[
            "queries issued",
            "distinct users reached",
            "AUR over reached users",
        ],
        &rows,
    );

    // Reference: AUR over the whole population (no lazy gossip ran, so only
    // reached users were refreshed).
    let global_aur = average_update_rate(sim.nodes().iter(), &changed, &versions);
    println!();
    println!(
        "AUR over the whole population (no lazy cycle ran): {}",
        fmt(global_aur)
    );
    println!();
    println!(
        "paper shape: a single query already refreshes a noticeable share of the reached \
         users' stored profiles (~24% in the paper) and ten consecutive queries push the \
         reached users above 60%, while users never reached by a query stay stale until \
         the next lazy cycle."
    );
}
