//! Figure 7 — Average update rate (AUR) under the lazy mode after a batch of
//! simultaneous profile changes: (a) uniform storage budgets, (b) the two
//! Poisson scenarios.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig7_aur_lazy -- --users 1000 --cycles 60
//! ```

use std::collections::HashSet;

use p3q::prelude::*;
use p3q::storage::{scale_bucket, PAPER_STORAGE_BUCKETS};
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::SeriesRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_scenario(
    world: &World,
    label: &str,
    storage: StorageDistribution,
    args: &HarnessArgs,
    recorder: &mut SeriesRecorder,
) {
    let cfg = &world.cfg;
    let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, args.seed);
    init_ideal_networks(&mut sim, &world.ideal);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xF167);
    bootstrap_random_views(&mut sim, cfg, &mut rng);

    // One day of profile changes, applied simultaneously.
    let batch =
        DynamicsGenerator::new(DynamicsConfig::paper_day(args.seed ^ 0xDA7)).generate(&world.trace);
    let changed: HashSet<UserId> = batch.changed_users().into_iter().collect();
    for change in &batch.changes {
        sim.node_mut(change.user.index())
            .add_tagging_actions(change.new_actions.iter().copied());
    }
    let versions: Vec<u64> = (0..sim.num_nodes())
        .map(|i| sim.node(i).profile_version())
        .collect();

    let sample_every = (args.cycles / 20).max(1);
    recorder.record(
        label,
        0,
        average_update_rate(sim.nodes().iter(), &changed, &versions),
    );
    sim.drive(
        &cfg.lazy(),
        RunOptions::cycles(args.cycles),
        |sim, event| {
            if let RunEvent::CycleEnd(cycle) = event {
                if cycle % sample_every == 0 || cycle == args.cycles {
                    recorder.record(
                        label,
                        cycle,
                        average_update_rate(sim.nodes().iter(), &changed, &versions),
                    );
                }
            }
        },
    );
    eprintln!(
        "  {label}: AUR {:.3} → {:.3}",
        recorder.get(label, 0).unwrap_or(0.0),
        recorder.last(label).unwrap_or(0.0)
    );
}

fn main() {
    let args = HarnessArgs::parse(60);
    println!("=== Figure 7: average update rate in lazy mode ===");
    let world = World::build(&args);
    println!("users {}, cycles {}", args.users, args.cycles);

    let mut recorder = SeriesRecorder::new();
    // (a) uniform budgets.
    for &bucket in &PAPER_STORAGE_BUCKETS {
        let c = scale_bucket(bucket, world.cfg.personal_network_size);
        run_scenario(
            &world,
            &format!("c={bucket}"),
            StorageDistribution::Uniform(bucket),
            &args,
            &mut recorder,
        );
        let _ = c;
    }
    // (b) heterogeneous budgets.
    run_scenario(
        &world,
        "poisson λ=1",
        StorageDistribution::poisson_lambda_1(),
        &args,
        &mut recorder,
    );
    run_scenario(
        &world,
        "poisson λ=4",
        StorageDistribution::poisson_lambda_4(),
        &args,
        &mut recorder,
    );

    let names = recorder.names();
    let header: Vec<&str> = std::iter::once("cycle")
        .chain(names.iter().copied())
        .collect();
    let xs: Vec<u64> = recorder.points(names[0]).iter().map(|&(x, _)| x).collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            std::iter::once(x.to_string())
                .chain(
                    names
                        .iter()
                        .map(|n| recorder.get(n, x).map(fmt).unwrap_or_default()),
                )
                .collect()
        })
        .collect();
    println!();
    print_table(&header, &rows);
    println!();
    println!("csv:");
    print!("{}", recorder.to_csv());
    println!();
    println!(
        "paper shape: small storage budgets stay fresh (c=10/20 exceed 95% AUR within ~30 \
         cycles) while large budgets lag far behind (c=500/1000 around 40% after 100 \
         cycles); the λ=1 population therefore refreshes faster than λ=4."
    );
}
