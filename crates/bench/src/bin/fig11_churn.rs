//! Figure 11 — Impact of massive simultaneous departures on the top-k
//! quality: recall per cycle for p ∈ {0, 10, 30, 50, 70, 90}% departed users
//! under the two heterogeneous storage scenarios, and the fraction of queries
//! that can never reach recall 1 (Figure 11(c)).
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig11_churn -- --users 1000 --queries 150
//! ```

use p3q::prelude::*;
use p3q_bench::{
    fire_due_sim_events, fmt, print_table, run_recall_experiment_with_events, HarnessArgs,
    SimEvent, World,
};

fn main() {
    let args = HarnessArgs::parse(10);
    println!("=== Figure 11: impact of user departures on top-k processing ===");
    let world = World::build(&args);
    let cfg = &world.cfg;
    println!(
        "users {}, tracked queries {}, eager cycles {}",
        args.users, args.queries, args.cycles
    );

    let departure_fractions = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9];
    let scenarios = [
        StorageDistribution::poisson_lambda_1(),
        StorageDistribution::poisson_lambda_4(),
    ];
    let mut incomplete_rows = Vec::new();
    for storage in scenarios {
        println!();
        println!("--- {} ---", storage.label());
        let mut per_p = Vec::new();
        for &p in &departure_fractions {
            let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, args.seed);
            init_ideal_networks(&mut sim, &world.ideal);
            // The paper's churn scenario is an "at cycle 0" event: the
            // departures are scheduled in the queue and fired through it
            // (before queries are issued — survivors query survivors).
            let mut churn = EventQueue::new();
            if p > 0.0 {
                churn.schedule(0, SimEvent::MassDeparture(p));
            }
            fire_due_sim_events(&mut sim, &mut churn);
            // Only surviving queriers issue queries.
            let queries: Vec<Query> = world
                .sample_queries(args.queries)
                .into_iter()
                .filter(|q| sim.is_alive(q.querier.index()))
                .collect();

            // How much ideal-network quality did the departures destroy?
            // Strip the departed users from a clone of the index and
            // re-score only the affected survivors (the incremental churn
            // path), then count the queriers whose ideal network shrank.
            let departed: Vec<UserId> = (0..sim.num_nodes())
                .filter(|&i| !sim.is_alive(i))
                .map(UserId::from_index)
                .collect();
            let damaged_queriers = if departed.is_empty() {
                0
            } else {
                let mut survivors_dataset = world.trace.dataset.clone();
                let old_profiles: Vec<(UserId, Profile)> = departed
                    .iter()
                    .map(|&u| (u, survivors_dataset.profile(u).clone()))
                    .collect();
                for &u in &departed {
                    *survivors_dataset.profile_mut(u) = Profile::new();
                }
                let mut index = world.index.clone();
                let mut survivor_ideal = world.ideal.clone();
                survivor_ideal.apply_departures(
                    &survivors_dataset,
                    &mut index,
                    old_profiles.iter().map(|(u, profile)| (*u, profile)),
                );
                queries
                    .iter()
                    .filter(|q| {
                        survivor_ideal.network_of(q.querier) != world.ideal.network_of(q.querier)
                    })
                    .count()
            };

            let outcome = run_recall_experiment_with_events(
                &mut sim,
                &world,
                &queries,
                args.cycles,
                &mut churn,
            );
            eprintln!(
                "  p={:>3.0}%: recall cycle0 {:.3} → final {:.3}, {:.1}% of queries incomplete, \
                 {}/{} queriers lost ideal neighbours",
                p * 100.0,
                outcome.recall_per_cycle[0],
                outcome.recall_per_cycle.last().copied().unwrap_or(0.0),
                outcome.incomplete_fraction * 100.0,
                damaged_queriers,
                queries.len()
            );
            per_p.push((p, outcome, queries.len()));
        }

        // (a)/(b): recall per cycle, one column per departure fraction.
        let header: Vec<String> = std::iter::once("cycle".to_string())
            .chain(
                departure_fractions
                    .iter()
                    .map(|p| format!("p={:.0}%", p * 100.0)),
            )
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let rows: Vec<Vec<String>> = (0..=args.cycles as usize)
            .map(|cycle| {
                std::iter::once(cycle.to_string())
                    .chain(per_p.iter().map(|(_, o, _)| {
                        fmt(o.recall_per_cycle[cycle.min(o.recall_per_cycle.len() - 1)])
                    }))
                    .collect()
            })
            .collect();
        print_table(&header_refs, &rows);

        // (c): queries unable to reach recall 1 (their personal network can
        // no longer be fully covered).
        for (p, outcome, tracked) in &per_p {
            incomplete_rows.push(vec![
                storage.label(),
                format!("{:.0}", p * 100.0),
                tracked.to_string(),
                fmt(outcome.incomplete_fraction * 100.0),
            ]);
        }
    }

    println!();
    println!("--- Figure 11(c): queries unable to cover their personal network ---");
    print_table(
        &["scenario", "% departed", "tracked queries", "% incomplete"],
        &incomplete_rows,
    );
    println!();
    println!(
        "paper shape: recall degrades gracefully (50% departures cost ≈10% of quality), the \
         λ=4 population is more robust thanks to more replicas, and the share of queries \
         that can never reach recall 1 grows with the departure fraction (≤5% at 50% \
         departures for λ=4)."
    );
}
