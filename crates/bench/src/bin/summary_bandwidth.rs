//! Section 3.5 summary — bandwidth figures in bits per second.
//!
//! The paper concludes that, with one lazy cycle per minute and one eager
//! cycle every 5 seconds, maintaining the personal network costs about
//! 13.4 Kbps of background traffic, answering a query costs about 91 Kbps at
//! the querier and eager gossip can push a participant to about 121 Kbps.
//! This binary measures the same three quantities on the simulated system.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin summary_bandwidth -- --users 1000 --queries 100
//! ```

use p3q::bandwidth::{bits_per_second, category};
use p3q::prelude::*;
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::DistributionSummary;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(20);
    println!("=== Section 3.5 summary: bandwidth in bits per second ===");
    let world = World::build(&args);
    let cfg = &world.cfg;
    println!(
        "users {}, lazy cycle {} s, eager cycle {} s",
        args.users, cfg.lazy_cycle_seconds, cfg.eager_cycle_seconds
    );

    // ---------------------------------------------------------------- lazy
    let storage = StorageDistribution::poisson_lambda_1();
    let mut sim = build_simulator(&world.trace.dataset, cfg, &storage, args.seed);
    init_ideal_networks(&mut sim, &world.ideal);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x35);
    bootstrap_random_views(&mut sim, cfg, &mut rng);
    sim.drive(&cfg.lazy(), RunOptions::cycles(args.cycles), |_, _| {});
    let lazy_cycles = args.cycles;
    let per_node_lazy: Vec<f64> = (0..sim.num_nodes())
        .map(|idx| {
            sim.bandwidth
                .node_bits_per_second(idx, lazy_cycles, cfg.lazy_cycle_seconds)
        })
        .collect();
    let lazy_summary = DistributionSummary::of(&per_node_lazy);

    // ---------------------------------------------------------------- eager
    let queries = world.sample_queries(args.queries);
    let eager_bandwidth_before = sim.bandwidth.totals().0;
    let cycle_before = sim.cycle();
    for (i, query) in queries.iter().enumerate() {
        issue_query(
            &mut sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }
    sim.drive(&cfg.eager(), RunOptions::until_complete(40), |_, _| {});
    let eager_cycles = sim.cycle() - cycle_before;
    let eager_bytes = sim.bandwidth.totals().0 - eager_bandwidth_before;

    // Per-query figure: bytes billed to a query divided by the time it took.
    let mut per_query_bps = Vec::new();
    for (i, query) in queries.iter().enumerate() {
        let state = sim
            .node(query.querier.index())
            .querier_states
            .get(&QueryId(i as u64))
            .expect("query state");
        let cycles = state.completion_latency().unwrap_or(eager_cycles).max(1);
        per_query_bps.push(bits_per_second(
            state.traffic.total_bytes(),
            cycles,
            cfg.eager_cycle_seconds,
        ));
    }
    let query_summary = DistributionSummary::of(&per_query_bps);

    // Peak per-participant eager traffic (maintenance included).
    let per_node_eager: Vec<f64> = (0..sim.num_nodes())
        .map(|idx| {
            let maintenance = sim.bandwidth.node_bytes(idx, category::EAGER_MAINTENANCE)
                + sim.bandwidth.node_bytes(idx, category::EAGER_FORWARDED)
                + sim.bandwidth.node_bytes(idx, category::EAGER_RETURNED)
                + sim
                    .bandwidth
                    .node_bytes(idx, category::EAGER_PARTIAL_RESULTS);
            bits_per_second(maintenance, eager_cycles.max(1), cfg.eager_cycle_seconds)
        })
        .collect();
    let eager_summary = DistributionSummary::of(&per_node_eager);

    println!();
    let rows = vec![
        vec![
            "lazy maintenance (per node)".to_string(),
            fmt(lazy_summary.mean / 1000.0),
            fmt(lazy_summary.p90 / 1000.0),
            "13.4".to_string(),
        ],
        vec![
            "query processing (per query)".to_string(),
            fmt(query_summary.mean / 1000.0),
            fmt(query_summary.p90 / 1000.0),
            "91".to_string(),
        ],
        vec![
            "eager gossip (per participant)".to_string(),
            fmt(eager_summary.mean / 1000.0),
            fmt(eager_summary.p90 / 1000.0),
            "121".to_string(),
        ],
    ];
    print_table(
        &[
            "traffic class",
            "measured mean (Kbps)",
            "measured p90 (Kbps)",
            "paper (Kbps)",
        ],
        &rows,
    );

    println!();
    println!(
        "total eager traffic: {} bytes over {} eager cycles; lazy traffic {} bytes over {} \
         lazy cycles.",
        eager_bytes, eager_cycles, eager_bandwidth_before, lazy_cycles
    );
    println!(
        "absolute numbers depend on the synthetic trace's profile sizes; the claim to check \
         is the ordering lazy ≪ query ≈ eager and the order of magnitude (tens of Kbps)."
    );
}
