//! Figure 2 — Convergence speed of the personal-network construction.
//!
//! Every user starts with an empty personal network and a bootstrapped random
//! view; the lazy mode runs for `--cycles` cycles and the average success
//! ratio against the ideal personal networks is sampled periodically, for
//! each uniform storage scenario `c ∈ {10, 20, 50, 100, 200, 500, 1000}`
//! (scaled to the configured personal-network size).
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig2_convergence -- --users 1000 --cycles 100
//! ```

use p3q::prelude::*;
use p3q::storage::{scale_bucket, PAPER_STORAGE_BUCKETS};
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::SeriesRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(100);
    println!("=== Figure 2: personal-network convergence (average success ratio) ===");
    println!(
        "users {}, cycles {}, s {}, seed {}",
        args.users,
        args.cycles,
        args.protocol_config().personal_network_size,
        args.seed
    );
    let world = World::build(&args);
    let cfg = &world.cfg;
    let sample_every = (args.cycles / 20).max(1);

    let mut recorder = SeriesRecorder::new();
    for &bucket in &PAPER_STORAGE_BUCKETS {
        let c = scale_bucket(bucket, cfg.personal_network_size);
        let series = format!("c={bucket}");
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, args.seed);
        let mut rng = StdRng::seed_from_u64(args.seed ^ bucket as u64);
        bootstrap_random_views(&mut sim, cfg, &mut rng);

        recorder.record(
            &series,
            0,
            average_success_ratio(sim.nodes().iter(), &world.ideal),
        );
        sim.drive(
            &cfg.lazy(),
            RunOptions::cycles(args.cycles),
            |sim, event| {
                if let RunEvent::CycleEnd(cycle) = event {
                    if cycle % sample_every == 0 || cycle == args.cycles {
                        let ratio = average_success_ratio(sim.nodes().iter(), &world.ideal);
                        recorder.record(&series, cycle, ratio);
                    }
                }
            },
        );
        eprintln!(
            "  c={bucket:<5} ({c:>4} profiles stored): final success ratio {:.3}",
            recorder.last(&series).unwrap_or(0.0)
        );
    }

    // Tabulate: one row per sampled cycle, one column per storage scenario.
    let names = recorder.names();
    let header: Vec<&str> = std::iter::once("cycle")
        .chain(names.iter().copied())
        .collect();
    let xs: Vec<u64> = recorder.points(names[0]).iter().map(|&(x, _)| x).collect();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .map(|&x| {
            std::iter::once(x.to_string())
                .chain(
                    names
                        .iter()
                        .map(|n| recorder.get(n, x).map(fmt).unwrap_or_default()),
                )
                .collect()
        })
        .collect();
    println!();
    print_table(&header, &rows);

    println!();
    println!("csv:");
    print!("{}", recorder.to_csv());
    println!();
    println!(
        "paper shape: the more profiles are stored, the faster the personal networks \
         converge; with c=10 roughly 68% of the neighbours are found by cycle 200, \
         with large c more than 90% are found within 50 cycles."
    );
}
