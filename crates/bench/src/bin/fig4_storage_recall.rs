//! Figure 4 — Average recall evolution for different storage budgets
//! (α = 0.5).
//!
//! Same workload as Figure 3, but α is fixed at its optimum and the uniform
//! storage budget varies over the paper's buckets {10, 20, 50, 100, 200,
//! 500}.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig4_storage_recall -- --users 1000
//! ```

use p3q::prelude::*;
use p3q::storage::scale_bucket;
use p3q_bench::{fmt, print_table, run_recall_experiment, HarnessArgs, World};

fn main() {
    let args = HarnessArgs::parse(10);
    println!("=== Figure 4: average recall vs cycles for different c (α = 0.5) ===");
    let world = World::build(&args);
    let cfg = &world.cfg;
    let queries = world.sample_queries(args.queries);
    println!(
        "users {}, tracked queries {}, s {}",
        args.users,
        queries.len(),
        cfg.personal_network_size
    );

    let buckets = [10usize, 20, 50, 100, 200, 500];
    let mut results = Vec::new();
    for &bucket in &buckets {
        let c = scale_bucket(bucket, cfg.personal_network_size);
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, args.seed);
        init_ideal_networks(&mut sim, &world.ideal);
        let outcome = run_recall_experiment(&mut sim, &world, &queries, args.cycles);
        eprintln!(
            "  c={bucket:<4}: recall cycle0 {:.3} → final {:.3} (users reached/query {:.1})",
            outcome.recall_per_cycle[0],
            outcome.recall_per_cycle.last().copied().unwrap_or(0.0),
            outcome.mean_users_reached
        );
        results.push((bucket, outcome));
    }

    let header: Vec<String> = std::iter::once("cycle".to_string())
        .chain(buckets.iter().map(|b| format!("c={b}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> =
        (0..=args.cycles as usize)
            .map(|cycle| {
                std::iter::once(cycle.to_string())
                    .chain(results.iter().map(|(_, r)| {
                        fmt(r.recall_per_cycle[cycle.min(r.recall_per_cycle.len() - 1)])
                    }))
                    .collect()
            })
            .collect();
    println!();
    print_table(&header_refs, &rows);

    println!();
    println!(
        "paper shape: with only 10 stored profiles more than 4 of the 10 relevant items \
         are returned before any gossip; every scenario reaches recall 1 by cycle 10, \
         and the first cycle brings the largest improvement."
    );
}
