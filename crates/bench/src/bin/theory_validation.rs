//! Analytical model validation — Theorems 2.1 to 2.4.
//!
//! Compares, for several values of α,
//!
//! * the closed-form `R(α)` of Theorem 2.1,
//! * the deterministic recurrence it approximates,
//! * the measured number of eager cycles the simulated protocol needs, and
//! * the measured number of users reached / partial-result messages against
//!   the bounds of Theorems 2.3–2.4.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin theory_validation -- --users 1000 --queries 100
//! ```

use p3q::analysis::{
    cycles_to_completion, max_eager_messages, max_partial_results, max_users_involved,
    simulate_recurrence,
};
use p3q::prelude::*;
use p3q::storage::scale_bucket;
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::DistributionSummary;

fn main() {
    let args = HarnessArgs::parse(40);
    println!("=== Theorems 2.1–2.4: analytical model vs simulation ===");
    let world = World::build(&args);
    let base_cfg = &world.cfg;
    let c = scale_bucket(10, base_cfg.personal_network_size);
    let queries = world.sample_queries(args.queries);
    println!(
        "users {}, tracked queries {}, c = {} stored profiles, s = {}",
        args.users,
        queries.len(),
        c,
        base_cfg.personal_network_size
    );
    println!();

    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut rows = Vec::new();
    for &alpha in &alphas {
        let cfg = base_cfg.clone().with_alpha(alpha);
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, &cfg, &budgets, args.seed);
        init_ideal_networks(&mut sim, &world.ideal);

        // Model parameters: L = the querier's initial remaining list, X = the
        // number of profiles found per hop ≈ c (every reached user stores c
        // profiles, plus her own).
        let mean_l: f64 = queries
            .iter()
            .map(|q| sim.node(q.querier.index()).unstored_network_peers().len() as f64)
            .sum::<f64>()
            / queries.len().max(1) as f64;
        let x = (c + 1) as f64;

        for (i, query) in queries.iter().enumerate() {
            issue_query(
                &mut sim,
                query.querier.index(),
                QueryId(i as u64),
                query.clone(),
                &cfg,
            );
        }
        sim.drive(
            &cfg.eager(),
            RunOptions::until_complete(args.cycles),
            |_, _| {},
        );

        let mut latencies = Vec::new();
        let mut reached = Vec::new();
        let mut messages = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let state = sim
                .node(query.querier.index())
                .querier_states
                .get(&QueryId(i as u64))
                .expect("query state");
            if let Some(latency) = state.completion_latency() {
                latencies.push(latency as f64);
            }
            reached.push(state.reached_users.len() as f64);
            messages.push(state.traffic.partial_result_messages as f64);
        }
        let closed = cycles_to_completion(alpha, mean_l, x);
        let recurrence = simulate_recurrence(alpha, mean_l, x, 10_000);
        let measured = DistributionSummary::of(&latencies);
        let reached_summary = DistributionSummary::of(&reached);
        let messages_summary = DistributionSummary::of(&messages);
        // Theorems 2.3/2.4 bound the involved users and messages by 2^R where
        // R is the number of cycles the query actually ran, so the bound is
        // evaluated at the measured completion time.
        rows.push(vec![
            alpha.to_string(),
            fmt(mean_l),
            fmt(closed),
            recurrence.to_string(),
            fmt(measured.mean),
            fmt(measured.max),
            fmt(reached_summary.mean),
            fmt(max_users_involved(measured.mean).min(args.users as f64)),
            fmt(messages_summary.mean),
            fmt(max_partial_results(measured.mean).min(args.users as f64)),
        ]);
        eprintln!(
            "  α={alpha}: R_closed {:.1}, R_recurrence {}, measured mean {:.1}",
            closed, recurrence, measured.mean
        );
        let _ = max_eager_messages(closed);
    }

    print_table(
        &[
            "alpha",
            "mean L",
            "R(α) closed",
            "R(α) recurrence",
            "measured cycles (mean)",
            "measured (max)",
            "users reached (mean)",
            "bound 2^R_measured",
            "partial msgs (mean)",
            "bound 2^R−1 (capped at n)",
        ],
        &rows,
    );

    println!();
    println!(
        "expected: the measured completion time is minimal near α = 0.5 and grows towards \
         both extremes (Theorem 2.2); measured users reached and partial-result messages \
         stay below the 2^R(α) and 2^R(α)−1 bounds (Theorems 2.3–2.4)."
    );
}
