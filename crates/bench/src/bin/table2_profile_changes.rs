//! Table 2 — Influence of one day of profile changes for each uniform
//! storage budget: the fraction of users that have at least one stored
//! profile to refresh and the average / maximum number of stored profiles to
//! refresh.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin table2_profile_changes -- --users 1000
//! ```

use std::collections::HashSet;

use p3q::metrics::update_counts;
use p3q::prelude::*;
use p3q::storage::{scale_bucket, PAPER_STORAGE_BUCKETS};
use p3q_bench::{fmt, print_table, HarnessArgs, World};

fn main() {
    let args = HarnessArgs::parse(0);
    println!("=== Table 2: influence of one day of profile changes ===");
    let world = World::build(&args);
    let cfg = &world.cfg;

    // One paper-style day of activity (≈15% of the users add ~8 actions).
    let batch =
        DynamicsGenerator::new(DynamicsConfig::paper_day(args.seed ^ 0xDA7)).generate(&world.trace);
    let changed: HashSet<UserId> = batch.changed_users().into_iter().collect();
    println!(
        "users {}, changing users {} ({:.1}%), avg new actions {:.1}, max {}",
        args.users,
        batch.len(),
        batch.len() as f64 * 100.0 / args.users as f64,
        batch.mean_new_actions(),
        batch.max_new_actions()
    );

    // How far do the ideal networks themselves shift under the day's
    // changes? Derived incrementally: patch the action index with the
    // batch and re-score only the affected users.
    let (new_ideal, dirty) = world.incremental_ideal_after(&batch);
    let shifted = world
        .trace
        .dataset
        .users()
        .filter(|&u| new_ideal.network_of(u) != world.ideal.network_of(u))
        .count();
    println!(
        "ideal networks: {} users re-scored incrementally, {} networks shift ({:.1}%)",
        dirty.len(),
        shifted,
        shifted as f64 * 100.0 / args.users as f64
    );
    println!();

    let mut rows = Vec::new();
    for &bucket in &PAPER_STORAGE_BUCKETS {
        let c = scale_bucket(bucket, cfg.personal_network_size);
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, args.seed);
        init_ideal_networks(&mut sim, &world.ideal);

        // The day of changes is an "at cycle 0" event fired through the run
        // loop (with zero gossip cycles: the table measures the stale copies
        // immediately after the changes, before any refresh can happen). The
        // owners' profiles grow and their versions bump; the cached copies in
        // other users' personal networks become stale.
        let mut events = EventQueue::new();
        events.schedule(0, &batch);
        sim.drive(
            &cfg.lazy(),
            RunOptions::cycles(0).events(&mut events),
            |sim, event| {
                if let RunEvent::Scheduled(batch) = event {
                    apply_profile_changes(sim, batch);
                }
            },
        );
        let versions: Vec<u64> = (0..sim.num_nodes())
            .map(|i| sim.node(i).profile_version())
            .collect();

        let mut users_affected = 0usize;
        let mut to_update = Vec::new();
        for node in sim.nodes() {
            let counts = update_counts(node, &changed, &versions);
            if counts.owing_update > 0 {
                users_affected += 1;
                to_update.push(counts.owing_update as f64);
            }
        }
        let avg = to_update.iter().sum::<f64>() / to_update.len().max(1) as f64;
        let max = to_update.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            bucket.to_string(),
            c.to_string(),
            fmt(users_affected as f64 * 100.0 / args.users as f64),
            fmt(avg),
            fmt(max),
        ]);
    }
    print_table(
        &[
            "c (paper)",
            "profiles stored",
            "% users having to update",
            "avg profiles to update",
            "max profiles to update",
        ],
        &rows,
    );

    println!();
    println!(
        "paper shape (Table 2): the share of affected users saturates around 88% once c is \
         large enough, while the number of stale copies to refresh grows with c (4 on \
         average at c=10, 105 at c=1000)."
    );
}
