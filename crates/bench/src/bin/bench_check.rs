//! Perf-regression gate: compares a freshly produced `BENCH_*.json` against
//! a committed baseline and fails when the fresh numbers regress beyond a
//! tolerance band.
//!
//! Comparison rules, applied while walking both documents in lockstep:
//!
//! * **times** (keys ending in `_s` or `_ms`) — fresh may be at most
//!   `tolerance × baseline + 250 ms` (faster is always fine; absolute
//!   clocks differ between hosts, and the absolute slack keeps one-off
//!   scheduler blips on sub-100 ms measurements from flapping the gate
//!   while still catching real regressions at the seconds scale);
//! * **throughputs** (keys containing `per_sec`) — judged on the implied
//!   per-unit time (`1 / rate`) with the same band and slack;
//! * **ratios** (keys containing `speedup`) — informational only: they are
//!   quotients of two measurements with no absolute magnitude to anchor a
//!   noise slack to, so at smoke scale they carry no reliable signal (the
//!   underlying times and throughputs are what gate);
//! * **checksums** (keys containing `checksum`) — exact equality: same
//!   code + same seed must produce the same bytes on any host, so a
//!   mismatch is a determinism regression, not noise;
//! * **memory** (keys starting with `bytes_`) — exact-or-below-baseline:
//!   resident byte counts are deterministic for a given seed, so growth
//!   beyond the committed baseline is a memory regression (shrinking is
//!   always fine and simply means the baseline can be re-blessed);
//! * **everything else** — exact equality (counts, labels, structure), and
//!   keys added or removed relative to the baseline are violations; a
//!   changed `total_actions` or mode list means the benchmark itself
//!   changed and the baseline must be regenerated deliberately;
//! * **host-dependent keys** (`host_available_parallelism`,
//!   `parallel_threads`, `note`) — ignored.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_check -- \
//!     --baseline ci/baselines/BENCH_cycles_smoke.json \
//!     --fresh BENCH_cycles_smoke.json [--tolerance 4.0]
//! ```
//!
//! Exit code 0 when every comparison passes, 1 otherwise.
//!
//! ## Gate-all mode
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_check -- \
//!     --gate-all [--dir ci/baselines] [--fresh-dir .] [--tolerance 5]
//! ```
//!
//! Gates every [`SMOKE_JOBS`] baseline in `--dir` against the fresh copy in
//! `--fresh-dir` in one invocation. All files are walked and **every**
//! out-of-tolerance key is reported before the process exits nonzero — a
//! regression in the first benchmark cannot mask regressions in the later
//! ones, and one CI step replaces a per-file step cascade.
//!
//! ## Bless mode
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_check -- --bless [--dir ci/baselines]
//! ```
//!
//! Regenerates every smoke baseline by running the sibling benchmark
//! binaries with the canonical smoke flags ([`SMOKE_JOBS`] — the same ones
//! the CI `bench-smoke` job uses, since that job also drives its fresh
//! runs through `--bless --dir .`). This retires the old hand-regeneration
//! step: whenever a benchmark's output shape or the trace bytes change
//! deliberately, `--bless` rewrites `ci/baselines/` in one command, with
//! no flag drift possible between CI and the committed files.

use std::collections::BTreeMap;

/// A parsed JSON value. The benchmark files are small and machine-written,
/// so a minimal recursive-descent parser keeps the gate dependency-free
/// (the workspace's serde is an offline stub without JSON support).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("JSON parse error at byte {}: {message}", self.pos)
    }

    fn skip_whitespace(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_whitespace();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::String(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text}")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("dangling escape"))?;
                    out.push(match escaped {
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => other as char,
                    });
                    self.pos += 1;
                }
                Some(&b) => {
                    out.push(b as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing garbage"));
    }
    Ok(value)
}

/// Absolute noise slack for time-like measurements, in seconds: scheduler
/// blips on shared CI runners dominate sub-100 ms measurements, so the
/// relative band alone would flap on them. A fresh time only fails when it
/// exceeds `baseline × tolerance + slack` — big-scale regressions still
/// trip the gate, one-off 10 ms → 40 ms noise does not.
const TIME_SLACK_SECONDS: f64 = 0.25;

/// How a numeric key is judged.
#[derive(Debug, Clone, Copy, PartialEq)]
enum KeyClass {
    /// Smaller is better; fresh ≤ baseline × tolerance + slack. The factor
    /// converts the key's unit to seconds (1.0 for `_s`, 1e-3 for `_ms`).
    Time { to_seconds: f64 },
    /// A reciprocal time (throughput): judged on the implied per-unit time,
    /// with the same tolerance band and noise slack.
    PerSec,
    /// Deterministic resident-byte count: fresh must be at most the
    /// baseline (exact-or-≤; smaller means the baseline can be re-blessed).
    Bytes,
    /// Must match exactly (determinism / structure).
    Exact,
    /// Host-dependent; skipped.
    Ignored,
}

fn classify(key: &str) -> KeyClass {
    if key == "host_available_parallelism" || key == "parallel_threads" || key == "note" {
        KeyClass::Ignored
    } else if key.contains("checksum") {
        KeyClass::Exact
    } else if key.starts_with("bytes_") {
        KeyClass::Bytes
    } else if key.ends_with("_s") {
        KeyClass::Time { to_seconds: 1.0 }
    } else if key.ends_with("_ms") || key.ends_with("_ms_mean") {
        KeyClass::Time { to_seconds: 1e-3 }
    } else if key.contains("per_sec") {
        KeyClass::PerSec
    } else if key.contains("speedup") {
        // A quotient of two measurements: no absolute magnitude to anchor
        // the noise slack to, so it cannot gate reliably at smoke scale.
        KeyClass::Ignored
    } else {
        KeyClass::Exact
    }
}

struct Report {
    violations: Vec<String>,
    compared: usize,
}

impl Report {
    fn fail(&mut self, path: &str, message: String) {
        self.violations.push(format!("{path}: {message}"));
    }
}

/// Walks baseline and fresh in lockstep, judging leaves by their key class.
fn compare(baseline: &Json, fresh: &Json, path: &str, class: KeyClass, tol: f64, rep: &mut Report) {
    if class == KeyClass::Ignored {
        return;
    }
    match (baseline, fresh) {
        (Json::Object(b), Json::Object(f)) => {
            for (key, bv) in b {
                match f.get(key) {
                    Some(fv) => compare(bv, fv, &format!("{path}.{key}"), classify(key), tol, rep),
                    None => rep.fail(path, format!("missing key \"{key}\" in fresh output")),
                }
            }
            // Keys only in the fresh output mean the benchmark's shape
            // changed without regenerating the baseline — flag them too.
            for key in f.keys() {
                if !b.contains_key(key) {
                    rep.fail(path, format!("key \"{key}\" is not in the baseline"));
                }
            }
        }
        (Json::Array(b), Json::Array(f)) => {
            if b.len() != f.len() {
                rep.fail(
                    path,
                    format!("array length changed: {} -> {}", b.len(), f.len()),
                );
                return;
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                compare(bv, fv, &format!("{path}[{i}]"), class, tol, rep);
            }
        }
        (Json::Number(b), Json::Number(f)) => {
            rep.compared += 1;
            match class {
                KeyClass::Time { to_seconds } => {
                    let slack = TIME_SLACK_SECONDS / to_seconds;
                    if *f > *b * tol + slack {
                        rep.fail(
                            path,
                            format!("regressed: {f:.3} > {b:.3} x tolerance {tol} + slack {slack}"),
                        );
                    }
                }
                KeyClass::PerSec => {
                    // Judge the implied per-unit time: 1/rate in seconds.
                    if *f > 0.0 && *b > 0.0 && 1.0 / f > (1.0 / b) * tol + TIME_SLACK_SECONDS {
                        rep.fail(
                            path,
                            format!("regressed: {f:.4}/s is beyond {b:.4}/s x tolerance {tol}"),
                        );
                    }
                }
                KeyClass::Bytes => {
                    if *f > *b {
                        rep.fail(
                            path,
                            format!("memory regressed: {f:.0} bytes > baseline {b:.0}"),
                        );
                    }
                }
                KeyClass::Exact | KeyClass::Ignored => {
                    if (b - f).abs() > 1e-9 * b.abs().max(1.0) {
                        rep.fail(path, format!("exact value changed: {b} -> {f}"));
                    }
                }
            }
        }
        _ => {
            rep.compared += 1;
            if baseline != fresh {
                rep.fail(path, format!("value changed: {baseline:?} -> {fresh:?}"));
            }
        }
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    parse_json(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
}

/// The canonical smoke configuration: one entry per benchmark, giving the
/// sibling binary name, its flags and the output file name. This table is
/// the **single source of truth** for both the committed baselines
/// (`--bless`, default `--dir ci/baselines`) and CI's fresh smoke runs
/// (`--bless --dir .` in the `bench-smoke` job) — the two can never drift.
const SMOKE_JOBS: &[(&str, &[&str], &str)] = &[
    (
        "bench_similarity",
        // --hotspot-users 2000 keeps the demand-driven resolver columns
        // (on_demand / query_hotspot) in the gated smoke surface at a scale
        // that runs in well under a second.
        &[
            "--users",
            "1000",
            "--cycles",
            "2",
            "--memory-users",
            "0",
            "--hotspot-users",
            "2000",
        ],
        "BENCH_similarity_smoke.json",
    ),
    (
        "bench_cycles",
        &["--users", "1000", "--cycles", "2", "--warmup", "1"],
        "BENCH_cycles_smoke.json",
    ),
    (
        "bench_trace",
        &["--users", "1000"],
        "BENCH_trace_smoke.json",
    ),
    (
        "bench_faults",
        &[
            "--users",
            "400",
            "--queries",
            "40",
            "--rates",
            "0,5",
            "--warmup",
            "2",
            "--cycles",
            "10",
        ],
        "BENCH_faults_smoke.json",
    ),
    (
        "bench_transport",
        &[
            "--users",
            "400",
            "--queries",
            "40",
            "--warmup",
            "2",
            "--cycles",
            "8",
            "--actors",
            "1,3,8",
        ],
        "BENCH_transport_smoke.json",
    ),
];

/// Runs every [`SMOKE_JOBS`] entry with the sibling benchmark binaries
/// (built alongside this one) and writes the outputs into `dir`.
fn bless(dir: &str) {
    let own = std::env::current_exe().expect("cannot locate the running binary");
    let bin_dir = own.parent().expect("binary has a parent directory");
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("cannot create {dir}: {e}"));
    for (bin, flags, out_name) in SMOKE_JOBS {
        let bin_path = bin_dir.join(bin);
        assert!(
            bin_path.exists(),
            "{} not found next to bench_check — build the whole bench crate first \
             (cargo build --release -p p3q-bench)",
            bin_path.display()
        );
        let out_path = format!("{dir}/{out_name}");
        println!(
            "bench_check: blessing {out_path} ({bin} {})",
            flags.join(" ")
        );
        let status = std::process::Command::new(&bin_path)
            .args(*flags)
            .args(["--out", &out_path])
            .status()
            .unwrap_or_else(|e| panic!("cannot run {bin}: {e}"));
        assert!(status.success(), "{bin} exited with {status}");
    }
    println!(
        "bench_check: blessed {} baseline(s) into {dir}",
        SMOKE_JOBS.len()
    );
}

/// Compares one baseline/fresh file pair into `report`, prefixing every
/// violation path with the file name so gate-all output stays attributable.
fn gate_pair(baseline_path: &str, fresh_path: &str, tolerance: f64, report: &mut Report) {
    let baseline = load(baseline_path);
    let fresh = load(fresh_path);
    let before = report.violations.len();
    compare(
        &baseline,
        &fresh,
        baseline_path,
        KeyClass::Exact,
        tolerance,
        report,
    );
    println!(
        "bench_check: {} — {} violation(s) so far, {} leaves compared",
        baseline_path,
        report.violations.len() - before,
        report.compared
    );
}

fn main() {
    let mut baseline_path = None;
    let mut fresh_path = None;
    let mut tolerance = 4.0f64;
    let mut do_bless = false;
    let mut gate_all = false;
    let mut bless_dir = "ci/baselines".to_string();
    let mut fresh_dir = ".".to_string();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--baseline" => baseline_path = Some(value("--baseline")),
            "--fresh" => fresh_path = Some(value("--fresh")),
            "--bless" => do_bless = true,
            "--gate-all" => gate_all = true,
            "--dir" => bless_dir = value("--dir"),
            "--fresh-dir" => fresh_dir = value("--fresh-dir"),
            "--tolerance" => {
                tolerance = value("--tolerance")
                    .parse()
                    .expect("--tolerance wants a number");
                assert!(tolerance >= 1.0, "--tolerance must be >= 1");
            }
            other => {
                panic!(
                    "unknown flag {other}; usage: --baseline PATH --fresh PATH [--tolerance F] \
                     | --gate-all [--dir DIR] [--fresh-dir DIR] [--tolerance F] \
                     | --bless [--dir DIR]"
                )
            }
        }
    }
    if do_bless {
        bless(&bless_dir);
        return;
    }

    let mut report = Report {
        violations: Vec::new(),
        compared: 0,
    };
    if gate_all {
        // Gate every smoke baseline in one pass: all files are compared and
        // *every* out-of-tolerance key is reported before the gate fails,
        // so one bad benchmark cannot hide regressions in the ones after it.
        for (_, _, out_name) in SMOKE_JOBS {
            gate_pair(
                &format!("{bless_dir}/{out_name}"),
                &format!("{fresh_dir}/{out_name}"),
                tolerance,
                &mut report,
            );
        }
    } else {
        let baseline_path = baseline_path.expect("--baseline is required (or use --gate-all)");
        let fresh_path = fresh_path.expect("--fresh is required (or use --gate-all)");
        gate_pair(&baseline_path, &fresh_path, tolerance, &mut report);
    }

    println!(
        "bench_check: {} leaves compared (tolerance {tolerance}x)",
        report.compared
    );
    if report.violations.is_empty() {
        println!("bench_check: OK — no regression");
        return;
    }
    eprintln!("bench_check: {} violation(s):", report.violations.len());
    for violation in &report.violations {
        eprintln!("  {violation}");
    }
    std::process::exit(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(pairs: &[(&str, Json)]) -> Json {
        Json::Object(
            pairs
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    fn check(baseline: &Json, fresh: &Json, tol: f64) -> Vec<String> {
        let mut report = Report {
            violations: Vec::new(),
            compared: 0,
        };
        compare(baseline, fresh, "$", KeyClass::Exact, tol, &mut report);
        report.violations
    }

    #[test]
    fn parser_round_trips_a_bench_file() {
        let text = r#"{
            "benchmark": "cycles",
            "seed": 42,
            "note": "text with \"quotes\"",
            "scales": [
                {"users": 1000, "elapsed_s": 1.25, "ok": true, "none": null},
                {"users": 2000, "elapsed_s": -3e2}
            ]
        }"#;
        let parsed = parse_json(text).unwrap();
        let Json::Object(map) = &parsed else {
            panic!("expected object")
        };
        assert_eq!(map["seed"], Json::Number(42.0));
        let Json::Array(scales) = &map["scales"] else {
            panic!("expected array")
        };
        assert_eq!(scales.len(), 2);
        let Json::Object(second) = &scales[1] else {
            panic!("expected object")
        };
        assert_eq!(second["elapsed_s"], Json::Number(-300.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("nope").is_err());
    }

    #[test]
    fn times_use_the_tolerance_band_plus_slack() {
        let baseline = obj(&[("elapsed_s", Json::Number(1.0))]);
        assert!(check(&baseline, &obj(&[("elapsed_s", Json::Number(3.9))]), 4.0).is_empty());
        assert!(check(&baseline, &obj(&[("elapsed_s", Json::Number(0.01))]), 4.0).is_empty());
        // 4.1 is within band + 250 ms slack; 4.3 is beyond it.
        assert!(check(&baseline, &obj(&[("elapsed_s", Json::Number(4.1))]), 4.0).is_empty());
        assert_eq!(
            check(&baseline, &obj(&[("elapsed_s", Json::Number(4.3))]), 4.0).len(),
            1
        );
        // Millisecond keys get the same slack in their own unit.
        let small = obj(&[("index_build_ms", Json::Number(5.0))]);
        assert!(check(
            &small,
            &obj(&[("index_build_ms", Json::Number(100.0))]),
            4.0
        )
        .is_empty());
        let big = obj(&[("index_build_ms", Json::Number(500.0))]);
        assert_eq!(
            check(&big, &obj(&[("index_build_ms", Json::Number(2600.0))]), 4.0).len(),
            1
        );
    }

    #[test]
    fn tiny_time_measurements_do_not_flap() {
        // 9 ms baseline: a one-off 40 ms scheduler blip must not fail the
        // gate even though it is 4.4x the baseline.
        let baseline = obj(&[("elapsed_s", Json::Number(0.009))]);
        assert!(check(&baseline, &obj(&[("elapsed_s", Json::Number(0.04))]), 4.0).is_empty());
    }

    #[test]
    fn rates_judge_the_implied_time() {
        // 10/s = 0.1 s per unit; band + slack allows down to 1/0.65 = ~1.54/s.
        let baseline = obj(&[("cycles_per_sec", Json::Number(10.0))]);
        assert!(check(
            &baseline,
            &obj(&[("cycles_per_sec", Json::Number(3.0))]),
            4.0
        )
        .is_empty());
        assert_eq!(
            check(
                &baseline,
                &obj(&[("cycles_per_sec", Json::Number(1.0))]),
                4.0
            )
            .len(),
            1
        );
        // Speedup ratios are informational — two same-run measurements
        // with no absolute anchor for a noise slack.
        let ratio = obj(&[("speedup_vs_reference", Json::Number(2.0))]);
        assert!(check(
            &ratio,
            &obj(&[("speedup_vs_reference", Json::Number(0.1))]),
            4.0
        )
        .is_empty());
    }

    #[test]
    fn bytes_keys_gate_exact_or_below() {
        let baseline = obj(&[("bytes_index", Json::Number(1000.0))]);
        assert!(check(&baseline, &baseline.clone(), 4.0).is_empty());
        // Smaller is fine (an improvement waiting to be re-blessed)…
        assert!(check(
            &baseline,
            &obj(&[("bytes_index", Json::Number(900.0))]),
            4.0
        )
        .is_empty());
        // …but any growth is a memory regression, no tolerance band.
        assert_eq!(
            check(
                &baseline,
                &obj(&[("bytes_index", Json::Number(1001.0))]),
                4.0
            )
            .len(),
            1
        );
    }

    #[test]
    fn fresh_only_keys_are_flagged() {
        let baseline = obj(&[("users", Json::Number(7.0))]);
        let fresh = obj(&[("users", Json::Number(7.0)), ("p99_ms", Json::Number(9.0))]);
        assert_eq!(check(&baseline, &fresh, 4.0).len(), 1);
    }

    #[test]
    fn checksums_and_counts_are_exact() {
        let baseline = obj(&[
            ("trace_checksum", Json::String("0xabc".into())),
            ("total_actions", Json::Number(500.0)),
        ]);
        assert!(check(&baseline, &baseline.clone(), 4.0).is_empty());
        let diverged = obj(&[
            ("trace_checksum", Json::String("0xdef".into())),
            ("total_actions", Json::Number(501.0)),
        ]);
        assert_eq!(check(&baseline, &diverged, 4.0).len(), 2);
    }

    #[test]
    fn host_dependent_keys_are_ignored_and_missing_keys_flagged() {
        let baseline = obj(&[
            ("host_available_parallelism", Json::Number(1.0)),
            ("users", Json::Number(7.0)),
        ]);
        let fresh = obj(&[
            ("host_available_parallelism", Json::Number(64.0)),
            ("users", Json::Number(7.0)),
        ]);
        assert!(check(&baseline, &fresh, 4.0).is_empty());
        let missing = obj(&[("host_available_parallelism", Json::Number(64.0))]);
        assert_eq!(check(&baseline, &missing, 4.0).len(), 1);
    }

    #[test]
    fn nested_structures_walk_in_lockstep() {
        let baseline = obj(&[(
            "scales",
            Json::Array(vec![obj(&[
                ("users", Json::Number(1000.0)),
                ("elapsed_s", Json::Number(2.0)),
            ])]),
        )]);
        let ok = obj(&[(
            "scales",
            Json::Array(vec![obj(&[
                ("users", Json::Number(1000.0)),
                ("elapsed_s", Json::Number(2.5)),
            ])]),
        )]);
        assert!(check(&baseline, &ok, 4.0).is_empty());
        let shrunk = obj(&[("scales", Json::Array(vec![]))]);
        assert_eq!(check(&baseline, &shrunk, 4.0).len(), 1);
    }
}
