//! Table 1 — Distribution of the storage budget `c` under the two
//! heterogeneous scenarios (Poisson λ=1 and λ=4).
//!
//! Prints the analytical bucket probabilities (which must match the
//! percentages of Table 1) and an empirical sample over the simulated
//! population.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin table1_storage_distribution
//! ```

use p3q::storage::{StorageDistribution, PAPER_STORAGE_BUCKETS};
use p3q_bench::{fmt, print_table, HarnessArgs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = HarnessArgs::parse(0);
    println!("=== Table 1: distribution of c (personal-network profiles stored) ===");
    println!("population: {} users, seed {}", args.users, args.seed);
    println!();

    let scenarios = [
        ("λ=1", StorageDistribution::poisson_lambda_1()),
        ("λ=4", StorageDistribution::poisson_lambda_4()),
    ];

    let header: Vec<String> = std::iter::once("c".to_string())
        .chain(PAPER_STORAGE_BUCKETS.iter().map(|b| b.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (label, dist) in &scenarios {
        // Analytical probabilities (the numbers printed in the paper).
        let probs = dist.bucket_probabilities();
        let mut row = vec![format!("{label} (analytic %)")];
        row.extend(probs.iter().map(|p| fmt(p * 100.0)));
        rows.push(row);

        // Empirical sample over the requested population size.
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut counts = [0usize; 7];
        for _ in 0..args.users {
            let c = dist.sample(&mut rng);
            let idx = PAPER_STORAGE_BUCKETS.iter().position(|&b| b == c).unwrap();
            counts[idx] += 1;
        }
        let mut row = vec![format!("{label} (sampled %)")];
        row.extend(
            counts
                .iter()
                .map(|&c| fmt(c as f64 * 100.0 / args.users as f64)),
        );
        rows.push(row);
    }
    print_table(&header_refs, &rows);

    println!();
    println!("paper Table 1 reference:");
    println!("  λ=1: 36.79 36.79 18.39  6.13  1.53  0.31  0.06");
    println!("  λ=4:  2.06  8.25 16.49 21.99 21.99 17.59 11.73");
}
