//! Similarity-engine benchmark: ideal-network build time (counting index vs
//! per-pair-merge reference, single-threaded and parallel), the dynamics
//! scenario (apply K profile-change batches: incremental delta-apply +
//! dirty re-score vs full rebuild), plus lazy-cycle throughput, at several
//! population scales.
//!
//! Emits `BENCH_similarity.json` in the working directory so the perf
//! trajectory of the similarity layer is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_similarity [-- OPTIONS]
//!     --users a,b,c   population scales        (default 1000,5000,20000)
//!     --cycles N      lazy cycles to time      (default 3)
//!     --delta-batches N  dynamics batches      (default 3)
//!     --seed N        master seed              (default 42)
//!     --scenario NAME workload preset          (default paper-delicious)
//!     --skip-reference  skip the slow per-pair-merge baseline
//!     --memory-users N  index-memory probe scale (default 100000; 0 = off)
//!     --hotspot-users N  query-hotspot probe scale (default 100000; 0 = off)
//!     --out PATH      output path              (default BENCH_similarity.json)
//! ```
//!
//! Every scale reports the resident bytes of the compressed columnar index
//! (`bytes_index*`) next to the uncompressed CSR layout the first index
//! generation used, and of the decoded vs packed profile columns; the
//! `index_memory` block repeats the accounting at the `--memory-users`
//! scale (the 100k-user paper-delicious scenario by default), where memory
//! — not CPU — is the binding constraint. `bench_check` gates all `bytes_*`
//! keys exact-or-below-baseline.
//!
//! Each scale carries a **decode microbench** (`decode` block): every
//! posting run of the trace is encoded under both the retained LEB128
//! delta codec and the group-varint codec that now carries the hot paths,
//! then decoded back to back with matching checksums — the raw sweep cost
//! split from the full `accumulate` (id resolution + decode + counters)
//! cost. The `index_memory` probe repeats the decode columns at the
//! `--memory-users` scale, which is the acceptance measurement for the
//! group-varint kernels. The `packed_serving` block answers the same top-k
//! queries from decoded profiles and straight off the at-rest
//! [`PackedProfile`] bytes (both the counting sweep and the streaming
//! cursor path), asserting identical rankings.
//!
//! Each scale also benches the **demand-driven** path (`on_demand` block):
//! under the `query-hotspot` querier schedule, per dynamics batch, exact
//! cache invalidation + lazy resolution of the queried users
//! (`OnDemandNetworks`) is timed against a global `IdealNetworks` recompute
//! over the patched index, with results asserted byte-equal on every
//! queried user. The `query_hotspot` block repeats the measurement at the
//! `--hotspot-users` scale (100k by default), where the query-proportional
//! cost model is the point.

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use p3q::baseline::IdealNetworks;
use p3q::config::P3qConfig;
use p3q::experiment::build_simulator;
use p3q::lazy::bootstrap_random_views;
use p3q::resolver::OnDemandNetworks;
use p3q::similarity::{ActionIndex, SimilarityScratch};
use p3q::storage::StorageDistribution;
use p3q_sim::default_threads;
use p3q_sim::RunOptions;
use p3q_trace::codec::{
    encode_sorted_u32s, encode_sorted_u32s_grouped, for_each_sorted_u32_grouped_padded,
    read_varint, GROUP_DECODE_SLACK,
};
use p3q_trace::{
    action_key, DynamicsConfig, DynamicsGenerator, PackedProfile, Scenario, ScenarioConfig,
    SyntheticTrace, TraceGenerator, UserId,
};

struct Args {
    users: Vec<usize>,
    cycles: u64,
    delta_batches: usize,
    seed: u64,
    scenario: Scenario,
    skip_reference: bool,
    memory_users: usize,
    hotspot_users: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: vec![1_000, 5_000, 20_000],
        cycles: 3,
        delta_batches: 3,
        seed: 42,
        scenario: Scenario::PaperDelicious,
        skip_reference: false,
        memory_users: 100_000,
        hotspot_users: 100_000,
        out: "BENCH_similarity.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => {
                args.users = value("--users")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--users wants integers"))
                    .collect();
            }
            "--cycles" => {
                args.cycles = value("--cycles")
                    .parse()
                    .expect("--cycles wants an integer")
            }
            "--delta-batches" => {
                args.delta_batches = value("--delta-batches")
                    .parse()
                    .expect("--delta-batches wants an integer")
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--scenario" => args.scenario = Scenario::from_flag(&value("--scenario")),
            "--skip-reference" => args.skip_reference = true,
            "--memory-users" => {
                args.memory_users = value("--memory-users")
                    .parse()
                    .expect("--memory-users wants an integer")
            }
            "--hotspot-users" => {
                args.hotspot_users = value("--hotspot-users")
                    .parse()
                    .expect("--hotspot-users wants an integer")
            }
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

struct ScaleResult {
    users: usize,
    total_actions: usize,
    distinct_actions: usize,
    index_shards: usize,
    memory: MemoryResult,
    decode: DecodeResult,
    packed_serving: PackedServingResult,
    index_build_ms: f64,
    counting_single_ms: f64,
    counting_parallel_ms: f64,
    parallel_threads: usize,
    reference_ms: Option<f64>,
    dynamics: Option<DynamicsResult>,
    on_demand: Option<OnDemandResult>,
    lazy_cycle_ms: f64,
}

/// Resident-byte columns of one scale: the compressed index next to its
/// uncompressed CSR equivalent, and the decoded vs packed profile store.
struct MemoryResult {
    users: usize,
    total_actions: usize,
    distinct_actions: usize,
    bytes_index: usize,
    bytes_index_dictionary: usize,
    bytes_index_postings: usize,
    bytes_index_directory: usize,
    bytes_index_csr_equivalent: usize,
    bytes_profiles_decoded: usize,
    bytes_profiles_packed: usize,
}

impl MemoryResult {
    fn measure(dataset: &p3q_trace::Dataset, index: &ActionIndex) -> Self {
        let memory = index.memory();
        Self {
            users: dataset.num_users(),
            total_actions: dataset.total_actions(),
            distinct_actions: memory.distinct_actions,
            bytes_index: memory.total_bytes,
            bytes_index_dictionary: memory.dictionary_bytes,
            bytes_index_postings: memory.postings_bytes,
            bytes_index_directory: memory.directory_bytes,
            bytes_index_csr_equivalent: memory.csr_equivalent_bytes,
            bytes_profiles_decoded: dataset.profile_heap_bytes(),
            bytes_profiles_packed: dataset.packed_profile_bytes(),
        }
    }

    fn reduction_percent(&self) -> f64 {
        if self.bytes_index_csr_equivalent == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.bytes_index as f64 / self.bytes_index_csr_equivalent as f64)
    }

    fn write_fields(&self, json: &mut String, indent: &str) {
        let _ = writeln!(json, "{indent}\"bytes_index\": {},", self.bytes_index);
        let _ = writeln!(
            json,
            "{indent}\"bytes_index_dictionary\": {},",
            self.bytes_index_dictionary
        );
        let _ = writeln!(
            json,
            "{indent}\"bytes_index_postings\": {},",
            self.bytes_index_postings
        );
        let _ = writeln!(
            json,
            "{indent}\"bytes_index_directory\": {},",
            self.bytes_index_directory
        );
        let _ = writeln!(
            json,
            "{indent}\"bytes_index_csr_equivalent\": {},",
            self.bytes_index_csr_equivalent
        );
        let _ = writeln!(
            json,
            "{indent}\"bytes_profiles_decoded\": {},",
            self.bytes_profiles_decoded
        );
        let _ = writeln!(
            json,
            "{indent}\"bytes_profiles_packed\": {},",
            self.bytes_profiles_packed
        );
    }
}

/// The decode microbench: every posting run of the scale's trace encoded
/// both ways — the retained LEB128 delta codec and the group-varint codec
/// that now carries the hot paths — then decoded back to back over the same
/// runs, with matching rolling checksums proving the two streams agree.
/// `accumulate_sample_ms` re-times the *full* counting sweep (id
/// resolution, decode, per-user counters) over a user sample, so the
/// raw-decode and end-to-end accumulate costs are split into separate
/// gated columns.
struct DecodeResult {
    posting_runs: usize,
    posting_entries: usize,
    decode_passes: usize,
    checksum: u64,
    leb_ms: f64,
    group_ms: f64,
    accumulate_users: usize,
    accumulate_ms: f64,
    accumulate_checksum: u64,
}

impl DecodeResult {
    fn measure(dataset: &p3q_trace::Dataset, index: &ActionIndex, network_size: usize) -> Self {
        // Rebuild the per-action posting runs straight from the profiles
        // (sorted `(action, user)` pairs, grouped by action) so the bench
        // owns its byte streams and can encode each run under both codecs.
        let mut pairs: Vec<(u64, u32)> = Vec::new();
        for (user, profile) in dataset.iter() {
            for action in profile.iter() {
                pairs.push((action_key(action), user.0));
            }
        }
        pairs.sort_unstable();

        let mut leb_blob = Vec::new();
        let mut grp_blob = Vec::new();
        let mut leb_ends = Vec::new();
        let mut grp_ends = Vec::new();
        let mut run: Vec<u32> = Vec::new();
        let mut i = 0usize;
        while i < pairs.len() {
            let key = pairs[i].0;
            run.clear();
            while i < pairs.len() && pairs[i].0 == key {
                run.push(pairs[i].1);
                i += 1;
            }
            encode_sorted_u32s(&run, &mut leb_blob);
            leb_ends.push(leb_blob.len());
            encode_sorted_u32s_grouped(&run, &mut grp_blob);
            grp_ends.push(grp_blob.len());
        }
        // The same decode slack posting blobs carry, so the fused kernel's
        // bounds-check-free path covers trailing groups here too.
        grp_blob.resize(grp_blob.len() + GROUP_DECODE_SLACK, 0);
        let posting_entries = pairs.len();
        // Enough repetitions that the timed region dominates timer noise at
        // the small scales, but deliberately FEW passes at the large ones:
        // repeated hot passes over an identical multi-MB stream let the
        // branch predictor memorize LEB128's continuation-bit pattern,
        // erasing precisely the per-byte misprediction cost the group
        // format removes — production sweeps decode each run once per
        // query in ever-changing order, so the streaming (once-through)
        // regime is the honest model. Deterministic in the trace, so the
        // per-pass decode counts (and the checksums) gate exactly.
        let decode_passes = (8_000_000 / posting_entries.max(1)).clamp(1, 32);

        let start = Instant::now();
        let mut leb_sum = 0u64;
        for _ in 0..decode_passes {
            let mut begin = 0usize;
            for &end in &leb_ends {
                let bytes = &leb_blob[begin..end];
                let mut pos = 0usize;
                let mut user = read_varint(bytes, &mut pos) as u32;
                leb_sum = leb_sum.wrapping_add(u64::from(user));
                while pos < bytes.len() {
                    user += read_varint(bytes, &mut pos) as u32;
                    leb_sum = leb_sum.wrapping_add(u64::from(user));
                }
                begin = end;
            }
        }
        let leb_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let mut grp_sum = 0u64;
        for _ in 0..decode_passes {
            let mut begin = 0usize;
            for &end in &grp_ends {
                // The same fused kernel the production counting sweep runs.
                for_each_sorted_u32_grouped_padded(&grp_blob[begin..], end - begin, |user| {
                    grp_sum = grp_sum.wrapping_add(u64::from(user));
                });
                begin = end;
            }
        }
        let group_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            leb_sum, grp_sum,
            "the two codecs decoded different posting streams"
        );

        // The accumulate side of the split: the full counting sweep over a
        // deterministic user sample, through the production entry point.
        let step = (dataset.num_users() / 512).max(1);
        let sample: Vec<UserId> = dataset.users().step_by(step).collect();
        let mut scratch = SimilarityScratch::new(dataset.num_users());
        let start = Instant::now();
        for &user in &sample {
            index.accumulate(dataset.profile(user), user, &mut scratch);
        }
        let accumulate_ms = start.elapsed().as_secs_f64() * 1e3;
        // Rank the final sweep so the loop stays observable and the sample's
        // last scoring round is pinned byte-exactly in the baseline.
        let top = index.collect_top(network_size, &mut scratch);
        let accumulate_checksum = checksum_ranking(&top);

        eprintln!(
            "   decode: group-varint {:.1} ms vs LEB128 {:.1} ms ({:.2}x) over {} entries x {} passes",
            group_ms,
            leb_ms,
            leb_ms / group_ms.max(f64::MIN_POSITIVE),
            posting_entries,
            decode_passes
        );
        Self {
            posting_runs: leb_ends.len(),
            posting_entries,
            decode_passes,
            checksum: leb_sum,
            leb_ms,
            group_ms,
            accumulate_users: sample.len(),
            accumulate_ms,
            accumulate_checksum,
        }
    }

    fn entries_per_sec(&self, ms: f64) -> f64 {
        (self.posting_entries * self.decode_passes) as f64 / (ms / 1e3).max(f64::MIN_POSITIVE)
    }

    fn write_fields(&self, json: &mut String, indent: &str) {
        let _ = writeln!(json, "{indent}\"posting_runs\": {},", self.posting_runs);
        let _ = writeln!(
            json,
            "{indent}\"posting_entries\": {},",
            self.posting_entries
        );
        let _ = writeln!(json, "{indent}\"decode_passes\": {},", self.decode_passes);
        let _ = writeln!(
            json,
            "{indent}\"decode_checksum\": \"0x{:016x}\",",
            self.checksum
        );
        let _ = writeln!(json, "{indent}\"decode_leb128_ms\": {:.3},", self.leb_ms);
        let _ = writeln!(json, "{indent}\"decode_group_ms\": {:.3},", self.group_ms);
        let _ = writeln!(
            json,
            "{indent}\"decode_leb128_entries_per_sec\": {:.0},",
            self.entries_per_sec(self.leb_ms)
        );
        let _ = writeln!(
            json,
            "{indent}\"decode_group_entries_per_sec\": {:.0},",
            self.entries_per_sec(self.group_ms)
        );
        let _ = writeln!(
            json,
            "{indent}\"decode_group_speedup\": {:.2},",
            self.leb_ms / self.group_ms.max(f64::MIN_POSITIVE)
        );
        let _ = writeln!(
            json,
            "{indent}\"accumulate_sample_users\": {},",
            self.accumulate_users
        );
        let _ = writeln!(
            json,
            "{indent}\"accumulate_sample_ms\": {:.3},",
            self.accumulate_ms
        );
        let _ = writeln!(
            json,
            "{indent}\"accumulate_checksum\": \"0x{:016x}\"",
            self.accumulate_checksum
        );
    }
}

/// FNV-style fold of a ranking into one gateable word.
fn checksum_ranking(ranking: &[(UserId, u64)]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &(user, score) in ranking {
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= u64::from(user.0);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= score;
    }
    h
}

/// The packed-serving columns: the same top-k queries answered once from
/// decoded [`p3q_trace::Profile`]s and once straight off the at-rest
/// [`PackedProfile`] bytes (decode-on-the-fly, nothing materialized), for
/// both the counting sweep (`top_similar`) and the streaming top-k cursor
/// path (`resolve_top_similar`). Rankings are asserted identical — the
/// packed columns measure the cost of *not* unpacking, not a different
/// answer.
struct PackedServingResult {
    serving_users: usize,
    checksum: u64,
    decoded_ms: f64,
    packed_ms: f64,
    resolve_users: usize,
    resolve_decoded_ms: f64,
    resolve_packed_ms: f64,
}

impl PackedServingResult {
    fn measure(dataset: &p3q_trace::Dataset, index: &ActionIndex, network_size: usize) -> Self {
        let step = (dataset.num_users() / 256).max(1);
        let sample: Vec<UserId> = dataset.users().step_by(step).collect();
        // Packing happens at ingest in the serving story; it is the at-rest
        // representation, so it sits outside both timed regions.
        let packed: Vec<PackedProfile> = sample
            .iter()
            .map(|&u| PackedProfile::pack(dataset.profile(u)))
            .collect();
        let mut scratch = SimilarityScratch::new(dataset.num_users());

        let start = Instant::now();
        let decoded_nets: Vec<Vec<(UserId, u64)>> = sample
            .iter()
            .map(|&u| index.top_similar(dataset, u, network_size, &mut scratch))
            .collect();
        let decoded_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let packed_nets: Vec<Vec<(UserId, u64)>> = sample
            .iter()
            .zip(&packed)
            .map(|(&u, p)| index.top_similar_packed(p, u, network_size, &mut scratch))
            .collect();
        let packed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            decoded_nets, packed_nets,
            "packed serving diverged from the decoded sweep"
        );

        // The cursor path on a smaller sample: streaming top-k resolution
        // costs more per query, and the point here is path equality plus
        // the packed-vs-decoded delta, not another population sweep.
        let resolve_users = sample.len().min(64);
        let start = Instant::now();
        let resolved: Vec<Vec<(UserId, u64)>> = sample[..resolve_users]
            .iter()
            .map(|&u| index.resolve_top_similar(dataset, u, network_size).0)
            .collect();
        let resolve_decoded_ms = start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let resolved_packed: Vec<Vec<(UserId, u64)>> = sample[..resolve_users]
            .iter()
            .zip(&packed)
            .map(|(&u, p)| index.resolve_top_similar_packed(p, u, network_size).0)
            .collect();
        let resolve_packed_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            resolved, resolved_packed,
            "packed cursor resolution diverged from the decoded path"
        );

        let mut checksum = 0u64;
        for net in &decoded_nets {
            checksum = checksum.wrapping_add(checksum_ranking(net));
        }
        eprintln!(
            "   packed serving: {:.1} ms packed vs {:.1} ms decoded over {} users \
             (cursor path: {:.1} ms vs {:.1} ms over {})",
            packed_ms,
            decoded_ms,
            sample.len(),
            resolve_packed_ms,
            resolve_decoded_ms,
            resolve_users
        );
        Self {
            serving_users: sample.len(),
            checksum,
            decoded_ms,
            packed_ms,
            resolve_users,
            resolve_decoded_ms,
            resolve_packed_ms,
        }
    }

    fn write_fields(&self, json: &mut String, indent: &str) {
        let _ = writeln!(json, "{indent}\"serving_users\": {},", self.serving_users);
        let _ = writeln!(
            json,
            "{indent}\"packed_serving_checksum\": \"0x{:016x}\",",
            self.checksum
        );
        let _ = writeln!(
            json,
            "{indent}\"serving_decoded_ms\": {:.3},",
            self.decoded_ms
        );
        let _ = writeln!(
            json,
            "{indent}\"serving_packed_ms\": {:.3},",
            self.packed_ms
        );
        let _ = writeln!(
            json,
            "{indent}\"speedup_packed_vs_decoded\": {:.2},",
            self.decoded_ms / self.packed_ms.max(f64::MIN_POSITIVE)
        );
        let _ = writeln!(json, "{indent}\"resolve_users\": {},", self.resolve_users);
        let _ = writeln!(
            json,
            "{indent}\"resolve_decoded_ms\": {:.3},",
            self.resolve_decoded_ms
        );
        let _ = writeln!(
            json,
            "{indent}\"resolve_packed_ms\": {:.3}",
            self.resolve_packed_ms
        );
    }
}

struct DynamicsResult {
    batches: usize,
    mean_changed_users: f64,
    mean_new_actions: f64,
    mean_dirty_users: f64,
    incremental_ms_mean: f64,
    rebuild_ms_mean: f64,
    speedup: f64,
}

/// The dynamics scenario: apply `batches` paper-day change batches and, for
/// each, time the incremental path (patch the sharded index + re-score only
/// the dirty users) against a full rebuild (fresh index + full population
/// sweep), verifying after every batch that both produce identical
/// networks. Both sides run single-threaded so the ratio is an algorithmic
/// speedup, not a parallelism artefact.
fn bench_dynamics(trace: &SyntheticTrace, s: usize, args: &Args) -> Option<DynamicsResult> {
    if args.delta_batches == 0 {
        return None;
    }
    let mut dataset = trace.dataset.clone();
    let mut index = ActionIndex::build(&dataset);
    let mut ideal = IdealNetworks::compute_with_threads(&dataset, s, 1);

    let mut changed_users = 0usize;
    let mut new_actions = 0usize;
    let mut dirty_users = 0usize;
    let mut incremental_ms = 0.0f64;
    let mut rebuild_ms = 0.0f64;
    for k in 0..args.delta_batches {
        let day_seed = args.seed ^ 0xDA7 ^ ((k as u64) << 17);
        let batch = DynamicsGenerator::new(DynamicsConfig::paper_day(day_seed)).generate(trace);
        changed_users += batch.len();
        new_actions += batch.apply(&mut dataset);

        let start = Instant::now();
        let dirty = ideal.apply_change_batch_with_threads(&dataset, &mut index, &batch, 1);
        incremental_ms += start.elapsed().as_secs_f64() * 1e3;
        dirty_users += dirty.len();

        let start = Instant::now();
        let full = IdealNetworks::compute_with_threads(&dataset, s, 1);
        rebuild_ms += start.elapsed().as_secs_f64() * 1e3;

        for user in dataset.users() {
            assert_eq!(
                ideal.network_of(user),
                full.network_of(user),
                "incremental path diverged from full rebuild at batch {k} for {user}"
            );
        }
    }
    let n = args.delta_batches as f64;
    let result = DynamicsResult {
        batches: args.delta_batches,
        mean_changed_users: changed_users as f64 / n,
        mean_new_actions: new_actions as f64 / n,
        mean_dirty_users: dirty_users as f64 / n,
        incremental_ms_mean: incremental_ms / n,
        rebuild_ms_mean: rebuild_ms / n,
        speedup: rebuild_ms / incremental_ms.max(f64::MIN_POSITIVE),
    };
    eprintln!(
        "   dynamics ({} batches): incremental {:.1} ms vs rebuild {:.0} ms ({:.1}x), \
         {:.0} dirty users/batch",
        result.batches,
        result.incremental_ms_mean,
        result.rebuild_ms_mean,
        result.speedup,
        result.mean_dirty_users
    );
    Some(result)
}

/// The demand-driven columns: per dynamics batch, time exact cache
/// invalidation plus lazy resolution of that cycle's queriers
/// ([`OnDemandNetworks`]) against a global [`IdealNetworks`] recompute over
/// the same patched index, asserting both agree on every queried user. The
/// querier schedule is always the `query-hotspot` preset (Zipf-skewed,
/// <1% of users per cycle) regardless of `--scenario` — the hotspot axis is
/// what the demand-driven resolver exists for. The index patch itself
/// (`apply_deltas`) is shared infrastructure both paths need, so it runs
/// untimed and the ratio compares pure resolution strategies.
struct OnDemandResult {
    users: usize,
    batches: usize,
    mean_queriers_per_cycle: f64,
    resolutions: usize,
    cache_hits: usize,
    positions_scanned: usize,
    early_terminations: usize,
    patched: usize,
    evicted: usize,
    threads: usize,
    on_demand_ms_mean: f64,
    global_ms_mean: f64,
    speedup: f64,
}

impl OnDemandResult {
    fn write_fields(&self, json: &mut String, indent: &str) {
        let _ = writeln!(json, "{indent}\"batches\": {},", self.batches);
        let _ = writeln!(
            json,
            "{indent}\"mean_queriers_per_cycle\": {:.1},",
            self.mean_queriers_per_cycle
        );
        let _ = writeln!(json, "{indent}\"resolutions\": {},", self.resolutions);
        let _ = writeln!(json, "{indent}\"cache_hits\": {},", self.cache_hits);
        let _ = writeln!(
            json,
            "{indent}\"positions_scanned\": {},",
            self.positions_scanned
        );
        let _ = writeln!(
            json,
            "{indent}\"early_terminations\": {},",
            self.early_terminations
        );
        let _ = writeln!(json, "{indent}\"patched\": {},", self.patched);
        let _ = writeln!(json, "{indent}\"evicted\": {},", self.evicted);
        let _ = writeln!(json, "{indent}\"parallel_threads\": {},", self.threads);
        let _ = writeln!(
            json,
            "{indent}\"on_demand_update_ms\": {:.3},",
            self.on_demand_ms_mean
        );
        let _ = writeln!(
            json,
            "{indent}\"global_recompute_ms\": {:.3},",
            self.global_ms_mean
        );
        let _ = writeln!(
            json,
            "{indent}\"speedup_on_demand_vs_global\": {:.2}",
            self.speedup
        );
    }
}

fn bench_on_demand(
    trace: &SyntheticTrace,
    s: usize,
    args: &Args,
    threads: usize,
) -> Option<OnDemandResult> {
    if args.delta_batches == 0 {
        return None;
    }
    let users = trace.dataset.num_users();
    // One warm-up cycle (so the dynamics batches hit memoized entries:
    // patch and evict both exercised) plus one querier set per batch.
    let schedule = ScenarioConfig::new(Scenario::QueryHotspot, users, args.seed)
        .with_horizon(args.delta_batches as u64 + 1)
        .querier_schedule();

    let mut dataset = trace.dataset.clone();
    let mut index = ActionIndex::build(&dataset);
    let mut resolver = OnDemandNetworks::new(users, s);
    resolver.resolve_many(&dataset, &index, &schedule[0], threads);

    let mut queried = schedule[0].len();
    let mut on_demand_ms = 0.0f64;
    let mut global_ms = 0.0f64;
    for k in 0..args.delta_batches {
        let day_seed = args.seed ^ 0xDA7 ^ ((k as u64) << 17);
        let batch = DynamicsGenerator::new(DynamicsConfig::paper_day(day_seed)).generate(trace);
        batch.apply(&mut dataset);
        let outcome = index.apply_deltas(
            batch
                .changes
                .iter()
                .map(|c| (c.user, c.new_actions.as_slice())),
        );
        let queriers = &schedule[k + 1];
        queried += queriers.len();

        let start = Instant::now();
        resolver.apply_delta_outcome(&dataset, &outcome, threads);
        resolver.resolve_many(&dataset, &index, queriers, threads);
        on_demand_ms += start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let oracle = IdealNetworks::compute_with_index_threads(&dataset, s, &index, threads);
        global_ms += start.elapsed().as_secs_f64() * 1e3;

        for &user in queriers {
            assert_eq!(
                resolver.cached(user).expect("queried user must be cached"),
                oracle.network_of(user),
                "on-demand resolution diverged from the global oracle at batch {k} for {user}"
            );
        }
    }
    let stats = resolver.stats();
    assert!(
        stats.patched + stats.evicted > 0,
        "dynamics never touched the cache: invalidation was not exercised"
    );
    let n = args.delta_batches as f64;
    let result = OnDemandResult {
        users,
        batches: args.delta_batches,
        mean_queriers_per_cycle: queried as f64 / (n + 1.0),
        resolutions: stats.resolutions,
        cache_hits: stats.cache_hits,
        positions_scanned: stats.positions_scanned,
        early_terminations: stats.early_terminations,
        patched: stats.patched,
        evicted: stats.evicted,
        threads,
        on_demand_ms_mean: on_demand_ms / n,
        global_ms_mean: global_ms / n,
        speedup: global_ms / on_demand_ms.max(f64::MIN_POSITIVE),
    };
    eprintln!(
        "   on-demand ({} batches, {:.0} queriers/cycle): {:.1} ms vs global {:.0} ms \
         ({:.1}x), {} patched / {} evicted",
        result.batches,
        result.mean_queriers_per_cycle,
        result.on_demand_ms_mean,
        result.global_ms_mean,
        result.speedup,
        result.patched,
        result.evicted
    );
    Some(result)
}

fn bench_scale(users: usize, args: &Args) -> ScaleResult {
    eprintln!("== {users} users ==");
    let generation = Instant::now();
    // The scenario layer's density-preserving shape: items-per-user density
    // (and therefore the overlap structure) stays constant across scales.
    // Only the trace is generated — this benchmark rolls its own dynamics
    // batches below, so materializing the scenario schedule would be waste.
    let scenario = ScenarioConfig::new(args.scenario, users, args.seed);
    let trace = TraceGenerator::new(scenario.trace_config()).generate();
    let dataset = &trace.dataset;
    eprintln!(
        "   trace: {} actions in {:.1?}",
        dataset.total_actions(),
        generation.elapsed()
    );
    let cfg = P3qConfig::laptop_scale();
    let s = cfg.personal_network_size;

    let start = Instant::now();
    let index = ActionIndex::build(dataset);
    let index_build_ms = start.elapsed().as_secs_f64() * 1e3;
    let distinct_actions = index.distinct_actions();
    let index_shards = index.num_shards();
    let memory = MemoryResult::measure(dataset, &index);
    eprintln!(
        "   index memory: {:.1} MiB compressed vs {:.1} MiB CSR ({:.0}% less)",
        memory.bytes_index as f64 / (1 << 20) as f64,
        memory.bytes_index_csr_equivalent as f64 / (1 << 20) as f64,
        memory.reduction_percent()
    );
    let decode = DecodeResult::measure(dataset, &index, s);
    let packed_serving = PackedServingResult::measure(dataset, &index, s);

    let start = Instant::now();
    let single = IdealNetworks::compute_with_threads(dataset, s, 1);
    let counting_single_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!("   counting engine (1 thread): {counting_single_ms:.0} ms");

    let parallel_threads = default_threads();
    let start = Instant::now();
    let parallel = IdealNetworks::compute_with_threads(dataset, s, parallel_threads);
    let counting_parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!("   counting engine ({parallel_threads} threads): {counting_parallel_ms:.0} ms");

    let reference_ms = if args.skip_reference {
        None
    } else {
        let start = Instant::now();
        let reference = IdealNetworks::compute_reference(dataset, s);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "   per-pair-merge reference:   {ms:.0} ms ({:.1}x slower than counting)",
            ms / counting_single_ms
        );
        for user in dataset.users().take(50) {
            assert_eq!(
                single.network_of(user),
                reference.network_of(user),
                "engines disagree for {user}"
            );
        }
        Some(ms)
    };
    for user in dataset.users().take(50) {
        assert_eq!(
            single.network_of(user),
            parallel.network_of(user),
            "thread count changed the result for {user}"
        );
    }

    // The dynamics scenario: incremental delta-apply vs full rebuild.
    let dynamics = bench_dynamics(&trace, s, args);

    // The demand-driven columns: single-threaded on both sides, so the
    // ratio is an algorithmic speedup, not a parallelism artefact.
    let on_demand = bench_on_demand(&trace, s, args, 1);

    // Lazy-cycle throughput over a bootstrapped network.
    let mut sim = build_simulator(
        dataset,
        &cfg,
        &StorageDistribution::Uniform(1000),
        args.seed,
    );
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &cfg, &mut rng);
    let start = Instant::now();
    sim.drive(&cfg.lazy(), RunOptions::cycles(args.cycles), |_, _| {});
    let lazy_cycle_ms = start.elapsed().as_secs_f64() * 1e3 / args.cycles as f64;
    eprintln!("   lazy cycle: {lazy_cycle_ms:.0} ms");

    ScaleResult {
        users,
        total_actions: dataset.total_actions(),
        distinct_actions,
        index_shards,
        memory,
        decode,
        packed_serving,
        index_build_ms,
        counting_single_ms,
        counting_parallel_ms,
        parallel_threads,
        reference_ms,
        dynamics,
        on_demand,
        lazy_cycle_ms,
    }
}

/// Query-hotspot probe at a large scale: the acceptance measurement for the
/// demand-driven resolver. Unlike the per-scale columns this runs with the
/// full worker pool on both sides — at 100k users a single-threaded global
/// recompute would dominate the benchmark's wall clock, and the resolver's
/// work counters are thread-count invariant anyway (pinned by
/// `on_demand_props`), so every gated key stays deterministic.
fn hotspot_probe(users: usize, args: &Args) -> Option<OnDemandResult> {
    eprintln!("== query-hotspot probe: {users} users ==");
    let scenario = ScenarioConfig::new(Scenario::QueryHotspot, users, args.seed);
    let trace = TraceGenerator::new(scenario.trace_config()).generate();
    let s = P3qConfig::laptop_scale().personal_network_size;
    bench_on_demand(&trace, s, args, default_threads())
}

/// Index + decode probe at a large scale: generate the trace, build the
/// compressed index, account both layouts, and run the decode microbench —
/// no ideal-network computation, so the 100k paper-delicious scenario stays
/// cheap enough to run on every benchmark invocation. The decode columns at
/// this scale are the acceptance measurement for the group-varint kernels:
/// the posting population here is what the codec was shaped for.
fn memory_probe(users: usize, args: &Args) -> (MemoryResult, DecodeResult) {
    eprintln!("== index-memory probe: {users} users ==");
    let scenario = ScenarioConfig::new(args.scenario, users, args.seed);
    let trace = TraceGenerator::new(scenario.trace_config()).generate();
    let index = ActionIndex::build(&trace.dataset);
    let memory = MemoryResult::measure(&trace.dataset, &index);
    eprintln!(
        "   {} actions, {} distinct: {:.1} MiB compressed vs {:.1} MiB CSR ({:.0}% less)",
        memory.total_actions,
        memory.distinct_actions,
        memory.bytes_index as f64 / (1 << 20) as f64,
        memory.bytes_index_csr_equivalent as f64 / (1 << 20) as f64,
        memory.reduction_percent()
    );
    let decode = DecodeResult::measure(
        &trace.dataset,
        &index,
        P3qConfig::laptop_scale().personal_network_size,
    );
    (memory, decode)
}

fn main() {
    let args = parse_args();
    let results: Vec<ScaleResult> = args.users.iter().map(|&u| bench_scale(u, &args)).collect();
    let hotspot = if args.hotspot_users > 0 {
        hotspot_probe(args.hotspot_users, &args)
    } else {
        None
    };
    let probe = (args.memory_users > 0).then(|| memory_probe(args.memory_users, &args));

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"similarity\",\n");
    let _ = writeln!(
        json,
        "  \"network_size\": {},",
        P3qConfig::laptop_scale().personal_network_size
    );
    let _ = writeln!(json, "  \"lazy_cycles_timed\": {},", args.cycles);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    json.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"total_actions\": {},", r.total_actions);
        let _ = writeln!(json, "      \"distinct_actions\": {},", r.distinct_actions);
        let _ = writeln!(json, "      \"index_shards\": {},", r.index_shards);
        r.memory.write_fields(&mut json, "      ");
        let _ = writeln!(json, "      \"index_build_ms\": {:.3},", r.index_build_ms);
        let _ = writeln!(
            json,
            "      \"ideal_networks_counting_1_thread_ms\": {:.3},",
            r.counting_single_ms
        );
        let _ = writeln!(
            json,
            "      \"ideal_networks_counting_parallel_ms\": {:.3},",
            r.counting_parallel_ms
        );
        let _ = writeln!(json, "      \"parallel_threads\": {},", r.parallel_threads);
        match r.reference_ms {
            Some(ms) => {
                let _ = writeln!(
                    json,
                    "      \"ideal_networks_reference_merge_ms\": {ms:.3},"
                );
                let _ = writeln!(
                    json,
                    "      \"speedup_counting_vs_reference_1_thread\": {:.2},",
                    ms / r.counting_single_ms
                );
            }
            None => {
                json.push_str("      \"ideal_networks_reference_merge_ms\": null,\n");
                json.push_str("      \"speedup_counting_vs_reference_1_thread\": null,\n");
            }
        }
        match &r.dynamics {
            Some(d) => {
                json.push_str("      \"dynamics\": {\n");
                let _ = writeln!(json, "        \"batches\": {},", d.batches);
                let _ = writeln!(
                    json,
                    "        \"mean_changed_users\": {:.1},",
                    d.mean_changed_users
                );
                let _ = writeln!(
                    json,
                    "        \"mean_new_actions\": {:.1},",
                    d.mean_new_actions
                );
                let _ = writeln!(
                    json,
                    "        \"mean_dirty_users\": {:.1},",
                    d.mean_dirty_users
                );
                let _ = writeln!(
                    json,
                    "        \"incremental_update_ms\": {:.3},",
                    d.incremental_ms_mean
                );
                let _ = writeln!(
                    json,
                    "        \"full_rebuild_ms\": {:.3},",
                    d.rebuild_ms_mean
                );
                let _ = writeln!(
                    json,
                    "        \"speedup_incremental_vs_rebuild\": {:.2}",
                    d.speedup
                );
                json.push_str("      },\n");
            }
            None => json.push_str("      \"dynamics\": null,\n"),
        }
        match &r.on_demand {
            Some(d) => {
                json.push_str("      \"on_demand\": {\n");
                d.write_fields(&mut json, "        ");
                json.push_str("      },\n");
            }
            None => json.push_str("      \"on_demand\": null,\n"),
        }
        json.push_str("      \"decode\": {\n");
        r.decode.write_fields(&mut json, "        ");
        json.push_str("      },\n");
        json.push_str("      \"packed_serving\": {\n");
        r.packed_serving.write_fields(&mut json, "        ");
        json.push_str("      },\n");
        let _ = writeln!(json, "      \"lazy_cycle_ms\": {:.3}", r.lazy_cycle_ms);
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ],\n");
    match &hotspot {
        Some(d) => {
            json.push_str("  \"query_hotspot\": {\n");
            let _ = writeln!(json, "    \"users\": {},", d.users);
            d.write_fields(&mut json, "    ");
            json.push_str("  },\n");
        }
        None => json.push_str("  \"query_hotspot\": null,\n"),
    }
    match &probe {
        Some((m, d)) => {
            json.push_str("  \"index_memory\": {\n");
            let _ = writeln!(json, "    \"users\": {},", m.users);
            let _ = writeln!(json, "    \"total_actions\": {},", m.total_actions);
            let _ = writeln!(json, "    \"distinct_actions\": {},", m.distinct_actions);
            m.write_fields(&mut json, "    ");
            json.push_str("    \"decode\": {\n");
            d.write_fields(&mut json, "      ");
            json.push_str("    },\n");
            let _ = writeln!(
                json,
                "    \"note\": \"compressed columnar index vs uncompressed CSR: {:.1}% smaller\"",
                m.reduction_percent()
            );
            json.push_str("  }\n");
        }
        None => json.push_str("  \"index_memory\": null\n"),
    }
    json.push_str("}\n");

    std::fs::write(&args.out, &json).expect("writing benchmark output");
    eprintln!("wrote {}", args.out);
    println!("{json}");
}
