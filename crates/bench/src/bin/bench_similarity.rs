//! Similarity-engine benchmark: ideal-network build time (counting index vs
//! per-pair-merge reference, single-threaded and parallel) plus lazy-cycle
//! throughput, at several population scales.
//!
//! Emits `BENCH_similarity.json` in the working directory so the perf
//! trajectory of the similarity layer is tracked from PR to PR.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin bench_similarity [-- OPTIONS]
//!     --users a,b,c   population scales        (default 1000,5000,20000)
//!     --cycles N      lazy cycles to time      (default 3)
//!     --seed N        master seed              (default 42)
//!     --skip-reference  skip the slow per-pair-merge baseline
//!     --out PATH      output path              (default BENCH_similarity.json)
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use p3q::baseline::IdealNetworks;
use p3q::config::P3qConfig;
use p3q::experiment::build_simulator;
use p3q::lazy::{bootstrap_random_views, run_lazy_cycles};
use p3q::similarity::ActionIndex;
use p3q::storage::StorageDistribution;
use p3q_sim::default_threads;
use p3q_trace::{TraceConfig, TraceGenerator};

struct Args {
    users: Vec<usize>,
    cycles: u64,
    seed: u64,
    skip_reference: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        users: vec![1_000, 5_000, 20_000],
        cycles: 3,
        seed: 42,
        skip_reference: false,
        out: "BENCH_similarity.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--users" => {
                args.users = value("--users")
                    .split(',')
                    .map(|v| v.trim().parse().expect("--users wants integers"))
                    .collect();
            }
            "--cycles" => {
                args.cycles = value("--cycles")
                    .parse()
                    .expect("--cycles wants an integer")
            }
            "--seed" => args.seed = value("--seed").parse().expect("--seed wants an integer"),
            "--skip-reference" => args.skip_reference = true,
            "--out" => args.out = value("--out"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// Scales the laptop trace shape to an arbitrary population, keeping the
/// items-per-user density (and therefore the overlap structure) constant.
fn trace_config(users: usize, seed: u64) -> TraceConfig {
    let mut cfg = TraceConfig::laptop_scale(seed);
    cfg.num_users = users;
    cfg.num_items = users * 12;
    cfg.num_tags = (users * 3).max(300);
    cfg.num_topics = (users / 40).clamp(10, 200);
    cfg
}

struct ScaleResult {
    users: usize,
    total_actions: usize,
    distinct_actions: usize,
    index_build_ms: f64,
    counting_single_ms: f64,
    counting_parallel_ms: f64,
    parallel_threads: usize,
    reference_ms: Option<f64>,
    lazy_cycle_ms: f64,
}

fn bench_scale(users: usize, args: &Args) -> ScaleResult {
    eprintln!("== {users} users ==");
    let generation = Instant::now();
    let trace = TraceGenerator::new(trace_config(users, args.seed)).generate();
    let dataset = trace.dataset;
    eprintln!(
        "   trace: {} actions in {:.1?}",
        dataset.total_actions(),
        generation.elapsed()
    );
    let cfg = P3qConfig::laptop_scale();
    let s = cfg.personal_network_size;

    let start = Instant::now();
    let index = ActionIndex::build(&dataset);
    let index_build_ms = start.elapsed().as_secs_f64() * 1e3;
    let distinct_actions = index.distinct_actions();

    let start = Instant::now();
    let single = IdealNetworks::compute_with_threads(&dataset, s, 1);
    let counting_single_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!("   counting engine (1 thread): {counting_single_ms:.0} ms");

    let parallel_threads = default_threads();
    let start = Instant::now();
    let parallel = IdealNetworks::compute_with_threads(&dataset, s, parallel_threads);
    let counting_parallel_ms = start.elapsed().as_secs_f64() * 1e3;
    eprintln!("   counting engine ({parallel_threads} threads): {counting_parallel_ms:.0} ms");

    let reference_ms = if args.skip_reference {
        None
    } else {
        let start = Instant::now();
        let reference = IdealNetworks::compute_reference(&dataset, s);
        let ms = start.elapsed().as_secs_f64() * 1e3;
        eprintln!(
            "   per-pair-merge reference:   {ms:.0} ms ({:.1}x slower than counting)",
            ms / counting_single_ms
        );
        for user in dataset.users().take(50) {
            assert_eq!(
                single.network_of(user),
                reference.network_of(user),
                "engines disagree for {user}"
            );
        }
        Some(ms)
    };
    for user in dataset.users().take(50) {
        assert_eq!(
            single.network_of(user),
            parallel.network_of(user),
            "thread count changed the result for {user}"
        );
    }

    // Lazy-cycle throughput over a bootstrapped network.
    let mut sim = build_simulator(
        &dataset,
        &cfg,
        &StorageDistribution::Uniform(1000),
        args.seed,
    );
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB007);
    bootstrap_random_views(&mut sim, &cfg, &mut rng);
    let start = Instant::now();
    run_lazy_cycles(&mut sim, &cfg, args.cycles, |_, _| {});
    let lazy_cycle_ms = start.elapsed().as_secs_f64() * 1e3 / args.cycles as f64;
    eprintln!("   lazy cycle: {lazy_cycle_ms:.0} ms");

    ScaleResult {
        users,
        total_actions: dataset.total_actions(),
        distinct_actions,
        index_build_ms,
        counting_single_ms,
        counting_parallel_ms,
        parallel_threads,
        reference_ms,
        lazy_cycle_ms,
    }
}

fn main() {
    let args = parse_args();
    let results: Vec<ScaleResult> = args.users.iter().map(|&u| bench_scale(u, &args)).collect();

    let mut json = String::new();
    json.push_str("{\n  \"benchmark\": \"similarity\",\n");
    let _ = writeln!(
        json,
        "  \"network_size\": {},",
        P3qConfig::laptop_scale().personal_network_size
    );
    let _ = writeln!(json, "  \"lazy_cycles_timed\": {},", args.cycles);
    let _ = writeln!(json, "  \"seed\": {},", args.seed);
    json.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str("    {\n");
        let _ = writeln!(json, "      \"users\": {},", r.users);
        let _ = writeln!(json, "      \"total_actions\": {},", r.total_actions);
        let _ = writeln!(json, "      \"distinct_actions\": {},", r.distinct_actions);
        let _ = writeln!(json, "      \"index_build_ms\": {:.3},", r.index_build_ms);
        let _ = writeln!(
            json,
            "      \"ideal_networks_counting_1_thread_ms\": {:.3},",
            r.counting_single_ms
        );
        let _ = writeln!(
            json,
            "      \"ideal_networks_counting_parallel_ms\": {:.3},",
            r.counting_parallel_ms
        );
        let _ = writeln!(json, "      \"parallel_threads\": {},", r.parallel_threads);
        match r.reference_ms {
            Some(ms) => {
                let _ = writeln!(
                    json,
                    "      \"ideal_networks_reference_merge_ms\": {ms:.3},"
                );
                let _ = writeln!(
                    json,
                    "      \"speedup_counting_vs_reference_1_thread\": {:.2},",
                    ms / r.counting_single_ms
                );
            }
            None => {
                json.push_str("      \"ideal_networks_reference_merge_ms\": null,\n");
                json.push_str("      \"speedup_counting_vs_reference_1_thread\": null,\n");
            }
        }
        let _ = writeln!(json, "      \"lazy_cycle_ms\": {:.3}", r.lazy_cycle_ms);
        json.push_str(if i + 1 == results.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&args.out, &json).expect("writing benchmark output");
    eprintln!("wrote {}", args.out);
    println!("{json}");
}
