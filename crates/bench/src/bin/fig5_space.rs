//! Figure 5 — Per-user storage requirement for different storage budgets.
//!
//! For every uniform scenario `c ∈ {10, …, 1000}` the personal networks are
//! initialised to their ideal content and the total length (in tagging
//! actions) of the profiles each user stores is measured; the binary reports
//! the per-user distribution and the fraction of the space a full
//! personal-network replication would need.
//!
//! ```text
//! cargo run --release -p p3q-bench --bin fig5_space -- --users 1000
//! ```

use p3q::bandwidth::TAGGING_ACTION_BYTES;
use p3q::prelude::*;
use p3q::storage::{scale_bucket, PAPER_STORAGE_BUCKETS};
use p3q_bench::{fmt, print_table, HarnessArgs, World};
use p3q_sim::DistributionSummary;

fn main() {
    let args = HarnessArgs::parse(0);
    println!("=== Figure 5: per-user storage requirement (profile lengths stored) ===");
    let world = World::build(&args);
    let cfg = &world.cfg;
    println!("users {}, s {}", args.users, cfg.personal_network_size);
    println!();

    let mut rows = Vec::new();
    let mut full_reference: Option<f64> = None;
    for &bucket in &PAPER_STORAGE_BUCKETS {
        let c = scale_bucket(bucket, cfg.personal_network_size);
        let budgets = vec![c; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, cfg, &budgets, args.seed);
        init_ideal_networks(&mut sim, &world.ideal);

        let per_user: Vec<f64> = storage_requirements(&sim)
            .iter()
            .map(|&v| v as f64)
            .collect();
        let full: Vec<f64> = full_network_requirements(&sim, &world.trace.dataset)
            .iter()
            .map(|&v| v as f64)
            .collect();
        let summary = DistributionSummary::of(&per_user);
        let total: f64 = per_user.iter().sum();
        let full_total: f64 = full.iter().sum();
        if bucket == 1000 {
            full_reference = Some(total);
        }
        rows.push(vec![
            bucket.to_string(),
            c.to_string(),
            fmt(summary.mean),
            fmt(summary.median),
            fmt(summary.max),
            fmt(summary.mean * TAGGING_ACTION_BYTES as f64 / 1024.0),
            fmt(total * 100.0 / full_total.max(1.0)),
        ]);
    }
    print_table(
        &[
            "c (paper)",
            "profiles stored",
            "mean actions",
            "median",
            "max",
            "mean KiB",
            "% of full network",
        ],
        &rows,
    );

    if let Some(reference) = full_reference {
        println!();
        println!(
            "storing every profile of the personal network would take {:.1} MiB across all \
             users ({} bytes/action).",
            reference * TAGGING_ACTION_BYTES as f64 / (1024.0 * 1024.0),
            TAGGING_ACTION_BYTES
        );
    }
    println!();
    println!(
        "paper shape: storage grows with c but strongly sub-linearly at the small end \
         (10 profiles ≈ 6.8% of the full personal network, 500 profiles ≈ 73.6%); users \
         without enough similar neighbours stay cheap regardless of their budget."
    );
}
