//! Shared plumbing for the experiment harness.
//!
//! Every table and figure of the paper's evaluation (Section 3) has a
//! dedicated binary in `src/bin/`; they all share the helpers in this crate:
//! a tiny command-line parser, a common "world" (trace + ideal networks +
//! query workload) and the per-cycle recall measurement used by the
//! eager-mode figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;

use p3q::prelude::*;
use p3q_trace::{ChangeBatch, Scenario, ScenarioConfig, ScenarioEvent, SyntheticTrace, TraceShape};

/// Command-line options shared by all harness binaries.
///
/// ```text
/// --users N        population size                    (default 1000)
/// --seed N         master RNG seed                    (default 42)
/// --cycles N       number of gossip cycles            (binary-specific default)
/// --queries N      number of tracked queries          (default 200)
/// --paper-scale    use the paper's 10,000-user scale  (slow!)
/// --scenario NAME  workload preset                    (default paper-delicious)
/// ```
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Number of users in the simulated system.
    pub users: usize,
    /// Master seed.
    pub seed: u64,
    /// Number of gossip cycles to run (meaning depends on the binary).
    pub cycles: u64,
    /// Number of queries tracked in eager-mode experiments.
    pub queries: usize,
    /// Use the paper's full 10,000-user configuration.
    pub paper_scale: bool,
    /// The workload preset the world is built from.
    pub scenario: Scenario,
}

impl Default for HarnessArgs {
    fn default() -> Self {
        Self {
            users: 1_000,
            seed: 42,
            cycles: 0,
            queries: 200,
            paper_scale: false,
            scenario: Scenario::PaperDelicious,
        }
    }
}

impl HarnessArgs {
    /// Parses `std::env::args`, using `default_cycles` when `--cycles` is not
    /// given. Unknown flags abort with a usage message.
    pub fn parse(default_cycles: u64) -> Self {
        Self::parse_from(std::env::args().skip(1), default_cycles)
    }

    /// Parses an explicit argument iterator (testable variant of
    /// [`parse`](Self::parse)).
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I, default_cycles: u64) -> Self {
        let mut parsed = Self {
            cycles: default_cycles,
            ..Self::default()
        };
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut take_value = |name: &str| {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--users" => parsed.users = take_value("--users").parse().expect("--users"),
                "--seed" => parsed.seed = take_value("--seed").parse().expect("--seed"),
                "--cycles" => parsed.cycles = take_value("--cycles").parse().expect("--cycles"),
                "--queries" => parsed.queries = take_value("--queries").parse().expect("--queries"),
                "--paper-scale" => parsed.paper_scale = true,
                "--scenario" => parsed.scenario = Scenario::from_flag(&take_value("--scenario")),
                "--help" | "-h" => {
                    println!(
                        "options: --users N --seed N --cycles N --queries N --paper-scale --scenario NAME"
                    );
                    println!("scenarios:");
                    for s in Scenario::ALL {
                        println!("  {:<16} {}", s.name(), s.description());
                    }
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        parsed
    }

    /// The protocol configuration implied by the scale flags.
    pub fn protocol_config(&self) -> P3qConfig {
        if self.paper_scale {
            P3qConfig::paper(self.users)
        } else {
            P3qConfig::laptop_scale()
        }
    }

    /// The scenario instance implied by the flags — the single entry point
    /// every harness binary builds its world from.
    pub fn scenario_config(&self) -> ScenarioConfig {
        let shape = if self.paper_scale {
            TraceShape::FixedPaper
        } else {
            TraceShape::FixedLaptop
        };
        // The horizon equals the run length, so every scheduled event fires
        // within the run (the run loops flush end-boundary events).
        ScenarioConfig::new(self.scenario, self.users, self.seed)
            .with_shape(shape)
            .with_horizon(self.cycles)
    }

    /// The trace configuration implied by the flags (the trace half of
    /// [`scenario_config`](Self::scenario_config)).
    pub fn trace_config(&self) -> TraceConfig {
        self.scenario_config().trace_config()
    }
}

/// Everything an experiment needs: the trace, the protocol configuration, the
/// offline ideal networks, the one-query-per-user workload and the
/// scenario's event schedule.
pub struct World {
    /// The generated trace (dataset + latent topic model).
    pub trace: SyntheticTrace,
    /// Protocol configuration.
    pub cfg: P3qConfig,
    /// The counting action index over the trace — the shared base of every
    /// incremental dynamics/churn path (clone it before patching).
    pub index: ActionIndex,
    /// Ideal personal networks (global knowledge).
    pub ideal: IdealNetworks,
    /// The query workload (one query per user with a non-empty profile).
    pub queries: Vec<Query>,
    /// The scenario's concrete event schedule (change batches, departures),
    /// ordered by firing cycle. Convert with [`scenario_event_queue`] to
    /// feed a run loop.
    pub schedule: Vec<(u64, ScenarioEvent)>,
}

impl World {
    /// Builds the world for the given harness arguments, through the
    /// scenario entry point ([`HarnessArgs::scenario_config`]).
    ///
    /// The scenario's event schedule is materialized eagerly so every
    /// driver sees the same workload object; batch generation is parallel
    /// and per-user-streamed, so this costs ~2 ms at the default 1k-user
    /// scale (~0.2% of a paper-scale build, dominated by `IdealNetworks`).
    pub fn build(args: &HarnessArgs) -> Self {
        let workload = args.scenario_config().build();
        let trace = workload.trace;
        let cfg = args.protocol_config();
        let index = ActionIndex::build(&trace.dataset);
        let ideal =
            IdealNetworks::compute_with_index(&trace.dataset, cfg.personal_network_size, &index);
        let queries = QueryGenerator::new(args.seed ^ 0x5EED)
            .one_query_per_user(&trace.dataset)
            .into_iter()
            .filter(|q| !ideal.network_of(q.querier).is_empty())
            .collect();
        Self {
            trace,
            cfg,
            index,
            ideal,
            queries,
            schedule: workload.schedule,
        }
    }

    /// The ideal personal networks after one batch of profile changes,
    /// derived incrementally: the batch is applied to a dataset clone, and
    /// `apply_change_batch` patches a clone of the pre-change index and
    /// re-scores only the affected users (the index must predate the batch
    /// — the set semantics of `apply_deltas` tolerate re-applied actions,
    /// but the dirty set would degenerate to empty if the deltas were
    /// already indexed).
    ///
    /// Returns the new networks and the dirty users that were re-scored.
    pub fn incremental_ideal_after(&self, batch: &ChangeBatch) -> (IdealNetworks, Vec<UserId>) {
        let mut changed_dataset = self.trace.dataset.clone();
        batch.apply(&mut changed_dataset);
        let mut index = self.index.clone();
        let mut new_ideal = self.ideal.clone();
        let dirty = new_ideal.apply_change_batch(&changed_dataset, &mut index, batch);
        (new_ideal, dirty)
    }

    /// A deterministic sample of at most `limit` queries (spread over the
    /// user population rather than taking a prefix).
    pub fn sample_queries(&self, limit: usize) -> Vec<Query> {
        if self.queries.len() <= limit || limit == 0 {
            return self.queries.clone();
        }
        let stride = self.queries.len() as f64 / limit as f64;
        (0..limit)
            .map(|i| self.queries[(i as f64 * stride) as usize].clone())
            .collect()
    }
}

/// A simulation-level event on the cycle axis — the vocabulary the dynamics
/// and churn figures schedule in an [`EventQueue`] instead of hand-rolling
/// "at cycle X, do Y" conditions in their run loops.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// A fraction of the alive population departs simultaneously
    /// (Section 3.4.2).
    MassDeparture(f64),
    /// A batch of profile changes hits the owners' nodes (Section 3.4.1).
    ProfileChanges(ChangeBatch),
}

impl From<ScenarioEvent> for SimEvent {
    fn from(event: ScenarioEvent) -> Self {
        match event {
            ScenarioEvent::ProfileChanges(batch) => SimEvent::ProfileChanges(batch),
            ScenarioEvent::MassDeparture(fraction) => SimEvent::MassDeparture(fraction),
        }
    }
}

/// Converts a scenario's event schedule into a ready-to-run [`EventQueue`]
/// — the bridge between [`ScenarioConfig::build`]'s output and the
/// engine's `run_*_with_events` loops.
pub fn scenario_event_queue(schedule: &[(u64, ScenarioEvent)]) -> EventQueue<SimEvent> {
    let mut queue = EventQueue::new();
    for (cycle, event) in schedule {
        queue.schedule(*cycle, SimEvent::from(event.clone()));
    }
    queue
}

/// Applies one [`SimEvent`] to the simulation.
pub fn apply_sim_event(sim: &mut Simulator<P3qNode>, event: &SimEvent) {
    match event {
        SimEvent::MassDeparture(fraction) => {
            sim.mass_departure(*fraction);
        }
        SimEvent::ProfileChanges(batch) => {
            apply_profile_changes(sim, batch);
        }
    }
}

/// Fires every scheduled [`SimEvent`] due at the simulator's current cycle.
pub fn fire_due_sim_events(sim: &mut Simulator<P3qNode>, events: &mut EventQueue<SimEvent>) {
    for event in events.pop_due(sim.cycle()) {
        apply_sim_event(sim, &event);
    }
}

/// Per-cycle average recall of a batch of queries processed simultaneously in
/// eager mode — the measurement behind Figures 3, 4 and 11.
pub struct RecallExperiment {
    /// Average recall at cycle 0 (local processing only), then after each
    /// eager cycle.
    pub recall_per_cycle: Vec<f64>,
    /// Fraction of tracked queries whose final recall stays below 1 — the
    /// paper's "queries unable to get R10 = 1" metric (Figure 11(c)).
    pub incomplete_fraction: f64,
    /// Mean number of users reached per query.
    pub mean_users_reached: f64,
}

/// Issues `queries` on `sim`, runs `cycles` eager cycles and measures the
/// average recall against the centralized reference after every cycle.
pub fn run_recall_experiment(
    sim: &mut Simulator<P3qNode>,
    world: &World,
    queries: &[Query],
    cycles: u64,
) -> RecallExperiment {
    run_recall_experiment_with_events(sim, world, queries, cycles, &mut EventQueue::new())
}

/// Like [`run_recall_experiment`], with [`SimEvent`]s scheduled on the cycle
/// axis: events due at the current cycle fire **before** that cycle's eager
/// gossip (so a departure scheduled at cycle `c` hits queries in flight),
/// and events due at the final boundary fire after the loop.
pub fn run_recall_experiment_with_events(
    sim: &mut Simulator<P3qNode>,
    world: &World,
    queries: &[Query],
    cycles: u64,
    events: &mut EventQueue<SimEvent>,
) -> RecallExperiment {
    let cfg = &world.cfg;
    let references: HashMap<usize, Vec<(ItemId, u32)>> = queries
        .iter()
        .enumerate()
        .map(|(i, q)| {
            (
                i,
                centralized_topk(&world.trace.dataset, &world.ideal, q, cfg.top_k),
            )
        })
        .collect();

    for (i, query) in queries.iter().enumerate() {
        issue_query(
            sim,
            query.querier.index(),
            QueryId(i as u64),
            query.clone(),
            cfg,
        );
    }

    let average_recall = |sim: &mut Simulator<P3qNode>| -> f64 {
        let mut total = 0.0;
        for (i, query) in queries.iter().enumerate() {
            let state = sim
                .node_mut(query.querier.index())
                .querier_states
                .get_mut(&QueryId(i as u64))
                .expect("query state exists");
            let items: Vec<ItemId> = state
                .current_topk(cfg.top_k)
                .iter()
                .map(|r| r.item)
                .collect();
            total += recall_at_k(&items, &references[&i]);
        }
        total / queries.len().max(1) as f64
    };

    let mut recall_per_cycle = vec![average_recall(sim)];
    for _ in 0..cycles {
        fire_due_sim_events(sim, events);
        sim.drive(&cfg.eager(), RunOptions::cycles(1), |_, _| {});
        recall_per_cycle.push(average_recall(sim));
    }
    fire_due_sim_events(sim, events);

    let mut incomplete = 0usize;
    let mut reached_total = 0usize;
    for (i, query) in queries.iter().enumerate() {
        let state = sim
            .node_mut(query.querier.index())
            .querier_states
            .get_mut(&QueryId(i as u64))
            .expect("query state exists");
        reached_total += state.reached_users.len();
        // Figure 11(c): a query counts as unable to reach R10 = 1 if, with
        // everything it has received (scanned exhaustively), some relevant
        // item is still missing.
        let items: Vec<ItemId> = state
            .nra
            .topk_exhaustive(cfg.top_k)
            .iter()
            .map(|r| r.item)
            .collect();
        if recall_at_k(&items, &references[&i]) < 1.0 - 1e-9 {
            incomplete += 1;
        }
    }

    RecallExperiment {
        recall_per_cycle,
        incomplete_fraction: incomplete as f64 / queries.len().max(1) as f64,
        mean_users_reached: reached_total as f64 / queries.len().max(1) as f64,
    }
}

/// Prints a simple aligned table: a header row followed by data rows.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let formatted: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect();
        println!("{}", formatted.join("  "));
    };
    line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with 3 decimal places (the precision used in the output
/// tables).
pub fn fmt(value: f64) -> String {
    format!("{value:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_defaults_and_overrides() {
        let args = HarnessArgs::parse_from(Vec::<String>::new(), 25);
        assert_eq!(args.users, 1000);
        assert_eq!(args.cycles, 25);
        assert!(!args.paper_scale);

        let args = HarnessArgs::parse_from(
            [
                "--users",
                "50",
                "--seed",
                "9",
                "--cycles",
                "3",
                "--queries",
                "7",
            ]
            .iter()
            .map(|s| s.to_string()),
            25,
        );
        assert_eq!(args.users, 50);
        assert_eq!(args.seed, 9);
        assert_eq!(args.cycles, 3);
        assert_eq!(args.queries, 7);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = HarnessArgs::parse_from(["--bogus".to_string()], 1);
    }

    #[test]
    fn world_build_and_recall_experiment_smoke() {
        // Build a miniature world by hand to keep the test fast.
        let mut trace_cfg = TraceConfig::tiny(3);
        trace_cfg.num_users = 60;
        let trace = TraceGenerator::new(trace_cfg).generate();
        let cfg = P3qConfig::tiny();
        let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
        let queries: Vec<Query> = QueryGenerator::new(1)
            .one_query_per_user(&trace.dataset)
            .into_iter()
            .filter(|q| !ideal.network_of(q.querier).is_empty())
            .take(5)
            .collect();
        let index = ActionIndex::build(&trace.dataset);
        let world = World {
            trace,
            cfg: cfg.clone(),
            index,
            ideal,
            queries: queries.clone(),
            schedule: Vec::new(),
        };

        let budgets = vec![2usize; world.trace.dataset.num_users()];
        let mut sim = build_simulator_with_budgets(&world.trace.dataset, &cfg, &budgets, 5);
        init_ideal_networks(&mut sim, &world.ideal);
        let outcome = run_recall_experiment(&mut sim, &world, &queries, 6);
        assert_eq!(outcome.recall_per_cycle.len(), 7);
        let first = outcome.recall_per_cycle[0];
        let last = *outcome.recall_per_cycle.last().unwrap();
        assert!(
            last >= first - 1e-9,
            "recall must not degrade: {first} -> {last}"
        );
        assert!(last > 0.9, "recall should approach 1, got {last}");
    }

    #[test]
    fn sample_queries_spreads_over_population() {
        let mut trace_cfg = TraceConfig::tiny(1);
        trace_cfg.num_users = 40;
        let trace = TraceGenerator::new(trace_cfg).generate();
        let cfg = P3qConfig::tiny();
        let ideal = IdealNetworks::compute(&trace.dataset, cfg.personal_network_size);
        let queries = QueryGenerator::new(1).one_query_per_user(&trace.dataset);
        let index = ActionIndex::build(&trace.dataset);
        let world = World {
            trace,
            cfg,
            index,
            ideal,
            queries,
            schedule: Vec::new(),
        };
        let sample = world.sample_queries(10);
        assert_eq!(sample.len(), 10);
        let full = world.sample_queries(10_000);
        assert_eq!(full.len(), world.queries.len());
    }

    #[test]
    fn print_table_and_fmt_do_not_panic() {
        print_table(
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt(0.5), "0.500");
    }
}
