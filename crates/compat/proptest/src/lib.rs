//! Offline mini property-testing harness.
//!
//! The build environment cannot reach a crate registry, so this crate
//! provides the subset of the `proptest` surface the workspace's property
//! tests use: the [`proptest!`] macro (`x in strategy` arguments, optional
//! `#![proptest_config(...)]` header), [`Strategy`] with `prop_map`,
//! range/tuple strategies, [`any`], and `prop::collection::{vec, hash_set,
//! hash_map}`.
//!
//! Differences from real proptest, by design:
//!
//! * no shrinking — a failing case reports its case number and panics;
//! * cases are generated from a seed derived from the test name, so runs
//!   are deterministic (override the count with `PROPTEST_CASES`);
//! * the default case count is 64 (real proptest: 256) because several
//!   suites drive whole gossip simulations per case.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::Range;

use rand::prelude::*;

/// Runner configuration (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Self { cases }
    }
}

/// Error produced by a failing `prop_assert!` (subset of proptest's type).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test runner.
#[derive(Debug)]
pub struct TestRunner {
    rng: TestRng,
}

impl TestRunner {
    /// Creates a runner whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            rng: TestRng::seed_from_u64(h),
        }
    }

    /// The runner's RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A value generator (subset of proptest's `Strategy`; no shrinking).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy generating a constant (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident / $idx:tt),+);)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A / 0);
    (A / 0, B / 1);
    (A / 0, B / 1, C / 2);
    (A / 0, B / 1, C / 2, D / 3);
}

/// Types with a canonical full-domain strategy (proptest's `Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draws a uniformly random value of the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vector strategy: elements from `element`, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashSet::new();
            // Mirror proptest: a bounded number of attempts, so a domain
            // smaller than the requested size yields a smaller set instead
            // of looping forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Hash-set strategy: elements from `element`, size in `size`.
    pub fn hash_set<S: Strategy>(element: S, size: Range<usize>) -> HashSetStrategy<S> {
        HashSetStrategy { element, size }
    }

    /// Strategy for `HashMap<K::Value, V::Value>` with a size drawn from
    /// `size`.
    pub struct HashMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for HashMapStrategy<K, V>
    where
        K::Value: Eq + Hash,
    {
        type Value = HashMap<K::Value, V::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_range(self.size.clone());
            let mut out = HashMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(20) + 20 {
                out.insert(self.key.sample(rng), self.value.sample(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Hash-map strategy: keys/values from `key`/`value`, size in `size`.
    pub fn hash_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> HashMapStrategy<K, V> {
        HashMapStrategy { key, value, size }
    }
}

/// Namespace mirror of real proptest's `prop` module.
pub mod prop {
    pub use crate::collection;
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// mid-strategy) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!("{} ({:?} != {:?})", format!($($fmt)*), l, r),
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: both sides equal {:?}", l);
    }};
}

/// Declares property tests (subset of real proptest's macro).
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_prop(x in 0u32..10, v in prop::collection::vec(any::<u64>(), 0..5)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let ( $($arg,)* ) = ( $($crate::Strategy::sample(&($strat), runner.rng()),)* );
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e.0
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_and_map_strategies_compose(
            v in prop::collection::vec((0u32..4, 1u64..9), 0..6),
            s in prop::collection::hash_set(0u32..100, 0..10),
            m in prop::collection::hash_map(0u32..100, 0u64..5, 0..10),
        ) {
            prop_assert!(v.len() < 6);
            for &(a, b) in &v {
                prop_assert!(a < 4 && (1..9).contains(&b));
            }
            prop_assert!(s.len() < 10);
            prop_assert!(m.len() < 10);
        }

        #[test]
        fn prop_map_transforms(doubled in (1u32..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 100);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        #[test]
        fn config_header_is_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn runner_is_deterministic_per_name() {
        let mut a = TestRunner::deterministic("same");
        let mut b = TestRunner::deterministic("same");
        let sa: u64 = any::<u64>().sample(a.rng());
        let sb: u64 = any::<u64>().sample(b.rng());
        assert_eq!(sa, sb);
    }
}
