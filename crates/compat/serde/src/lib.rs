//! Offline stub of `serde`.
//!
//! The build environment cannot reach a crate registry, so this crate keeps
//! the source-level serde surface (`use serde::{Serialize, Deserialize}` and
//! the derives) compiling without any serialization machinery behind it.
//! Nothing in the workspace serializes at runtime today; when real
//! serialization lands, replace this stub with the real `serde` in the
//! workspace manifest — no call site changes needed.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`. Implemented for every type so
/// that generic bounds written against it keep compiling.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Implemented for every type so
/// that generic bounds written against it keep compiling.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
