//! Offline micro-benchmark harness.
//!
//! The build environment cannot reach a crate registry, so this crate
//! provides the subset of the `criterion` surface the workspace's benches
//! use: [`Criterion`] with `bench_function` / `benchmark_group`,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical pipeline, each benchmark is warmed up
//! briefly and then timed for a fixed wall-clock budget; the mean time per
//! iteration is printed as `bench: <name> ... <mean> per iter (<iters>
//! iters)`. Passing `--bench` (as `cargo bench` does) is accepted and
//! ignored; a single positional argument filters benchmarks by substring.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warm-up time per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Batch sizing hint (accepted for source compatibility; batching always
/// re-runs the setup per iteration here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The per-benchmark timing driver.
#[derive(Debug, Default)]
pub struct Bencher {
    /// Mean nanoseconds per iteration of the last `iter` call.
    pub mean_ns: f64,
    /// Iterations executed during measurement.
    pub iters: u64,
}

impl Bencher {
    /// Times `routine`, first warming up, then running for the measurement
    /// budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, also used to estimate a per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        let target_iters =
            ((MEASURE_BUDGET.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..target_iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = target_iters;
        self.mean_ns = elapsed.as_nanos() as f64 / target_iters as f64;
    }

    /// Times `routine` over inputs produced by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        // Keep whole-benchmark wall clock bounded even for slow routines.
        let wall = Instant::now();
        while total < MEASURE_BUDGET && wall.elapsed() < 4 * MEASURE_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark registry/driver (subset of criterion's type).
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Reads the benchmark filter from the command line (the positional
    /// argument `cargo bench -- <filter>` passes through).
    pub fn configure_from_args(mut self) -> Self {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self.filter = filter;
        self
    }

    fn should_run(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one(&mut self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        if !self.should_run(name) {
            return;
        }
        let mut bencher = Bencher::default();
        f(&mut bencher);
        println!(
            "bench: {name} ... {} per iter ({} iters)",
            human(bencher.mean_ns),
            bencher.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        self.run_one(name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks (subset of criterion's type).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for source compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for source compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (subset of criterion's macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.iters > 0);
        assert!(b.mean_ns > 0.0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::default();
        b.iter_batched(
            || vec![1u64; 16],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 64).to_string(), "build/64");
        assert_eq!(BenchmarkId::from_parameter(0.5).to_string(), "0.5");
    }

    #[test]
    fn human_units_scale() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(2_000_000_000.0).ends_with('s'));
    }
}
