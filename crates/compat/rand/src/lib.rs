//! Offline stand-in for the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment cannot reach a crate registry, so this crate
//! provides source-compatible replacements for the pieces of `rand` the
//! simulation relies on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! workspace only requires determinism for a given seed, not a particular
//! stream. All tests assert properties of *our* stream and stay
//! seed-stable.

#![forbid(unsafe_code)]

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a generator's raw bits (the `Standard`
/// distribution of real rand, folded into one helper trait).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`] (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Debiased multiply-shift (Lemire); span == 0 means the full
                // 64-bit range, which no caller uses for narrow types.
                let mut x = rng.next_u64();
                if span != 0 {
                    // Rejection sampling on the low word keeps the draw exact.
                    let mut m = (x as u128).wrapping_mul(span as u128);
                    let mut lo = m as u64;
                    if lo < span {
                        let t = span.wrapping_neg() % span;
                        while lo < t {
                            x = rng.next_u64();
                            m = (x as u128).wrapping_mul(span as u128);
                            lo = m as u64;
                        }
                    }
                    x = (m >> 64) as u64;
                }
                ((self.start as u128).wrapping_add(x as u128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                if end < <$t>::MAX {
                    (start..end + 1).sample_single(rng)
                } else if start > <$t>::MIN {
                    ((start - 1)..end).sample_single(rng).wrapping_add(1)
                } else {
                    // Full domain.
                    <$t as StandardSample>::draw(rng)
                }
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::draw(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly random value of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs a probability");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator with the role of `rand::rngs::StdRng`.
    ///
    /// xoshiro256++ over a SplitMix64-expanded seed: fast, equidistributed
    /// enough for simulation workloads, and fully reproducible from a
    /// 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = Self::splitmix(&mut state);
            }
            // All-zero state would be a fixed point; splitmix cannot produce
            // four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2n = s2 ^ s0;
            let mut s3n = s3 ^ s1;
            let s1n = s1 ^ s2n;
            let s0n = s0 ^ s3n;
            s2n ^= t;
            s3n = s3n.rotate_left(45);
            self.s = [s0n, s1n, s2n, s3n];
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (subset of `rand::seq`).

    use super::Rng;

    /// Slice shuffling and choosing (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Picks one element uniformly, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets must be reachable");
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..7);
            assert!((5..7).contains(&v));
        }
        assert_eq!(rng.gen_range(3u64..4), 3);
        assert_eq!(rng.gen_range(0usize..=0), 0);
    }

    #[test]
    fn unit_floats_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / 1000.0;
        assert!((0.4..0.6).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((350..650).contains(&hits), "hits {hits} far from 500");
    }

    #[test]
    fn shuffle_is_a_permutation_and_choose_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should move something");

        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let one = [9u32];
        assert_eq!(one.choose(&mut rng), Some(&9));
    }

    #[test]
    fn rng_methods_work_through_unsized_refs() {
        fn takes_dyn(rng: &mut dyn super::RngCore) -> u64 {
            use super::Rng;
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_dyn(&mut rng) < 100);
    }
}
