//! Offline stub of `serde_derive`.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! crate keeps `#[derive(Serialize, Deserialize)]` compiling without pulling
//! in the real serde machinery. Derives expand to nothing: the marker traits
//! in the sibling `serde` stub are implemented blanketly there. Swap both
//! stubs for the real crates (same names, same call sites) once a registry
//! is reachable.

use proc_macro::TokenStream;

/// No-op replacement for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
